(* The daemon's compiled-deck cache: one canonical {!Parser.deck} per
   (deck-content MD5, device-model override) pair.

   A request's [model] override rewrites every CNFET of the deck, so
   the same deck text under different overrides is a different circuit
   — caching them under one entry would alias models across requests.
   Remodelling happens here, once at insert ({!Circuit.remodel}); the
   engine's own override application then finds every device already on
   the right backend and leaves the circuit physically unchanged.

   Keeping a single canonical deck value per key is what makes the two
   pool-wide cache layers work across requests:

   - {!Cnt_spice.Mna}'s compile cache is keyed by the {e physical}
     identity of the circuit value, so only repeated runs of the same
     canonical deck share a symbolic compilation;
   - each CNFET's bias-point evaluation cache lives on the model record
     inside the circuit, so reusing the circuit value reuses the warm
     cache (the daemon runs the engine with [config.cache = None],
     which leaves the attached stores alone).

   Parse failures are not cached — malformed text is cheap to reject
   and the message must reflect the request that sent it.  Thread-safe;
   FIFO eviction. *)

open Cnt_spice

type entry = {
  md5 : string;
  model : string option;  (* the override this deck was staged under *)
  file : string option;  (* the client's path hint; part of the key
                            because it anchors .include resolution and
                            error locations *)
  deck : Parser.deck;
  mutable runs : int;  (* requests served from this entry, hit or miss *)
}

type t = {
  mutable entries : entry list;  (* newest first *)
  max_entries : int;
  eval_cache : Cnt_core.Eval_cache.config option;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(max_entries = 64) ?eval_cache () =
  if max_entries < 1 then
    invalid_arg "Deck_cache.create: max_entries must be >= 1";
  { entries = []; max_entries; eval_cache; mutex = Mutex.create ();
    hits = 0; misses = 0 }

(* Attach the server's eval-cache config to every CNFET once, at
   insert, so each subsequent request over this deck value starts from
   the warm store instead of a fresh one. *)
let apply_eval_cache t deck =
  match t.eval_cache with
  | None -> ()
  | Some cfg ->
      List.iter
        (function
          | Circuit.Cnfet { params; _ } ->
              Cnt_core.Device_model.set_cache params.Circuit.model cfg
          | _ -> ())
        (Circuit.elements deck.Parser.circuit)

let find_or_parse ?model ?file t text =
  let md5 = Digest.to_hex (Digest.string text) in
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  match
    List.find_opt
      (fun e -> e.md5 = md5 && e.model = model && e.file = file)
      t.entries
  with
  | Some e ->
      t.hits <- t.hits + 1;
      e.runs <- e.runs + 1;
      Ok (e, true)
  | None -> (
      match Parser.parse ?file text with
      | exception Parser.Parse_error err -> Error (Diag.Parse err)
      | deck -> (
          let remodelled =
            match model with
            | None -> Ok deck
            | Some backend -> (
                match Circuit.remodel deck.Parser.circuit ~backend with
                | circuit -> Ok { deck with Parser.circuit }
                | exception Circuit.Bad_circuit msg ->
                    Error (Diag.Bad_deck msg))
          in
          match remodelled with
          | Error _ as e -> e
          | Ok deck ->
              t.misses <- t.misses + 1;
              apply_eval_cache t deck;
              let e = { md5; model; file; deck; runs = 1 } in
              t.entries <-
                e :: List.filteri (fun i _ -> i < t.max_entries - 1) t.entries;
              Ok (e, false)))

let stats t =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  (List.length t.entries, t.hits, t.misses)
