(** Dense univariate polynomials with real coefficients and closed-form
    root extraction for degrees up to three.

    Coefficients are stored lowest-degree first: the array
    [[| c0; c1; c2 |]] denotes [c0 + c1*x + c2*x^2]. *)

type t = float array

val zero : t
val one : t

val of_coeffs : float array -> t
(** Copy an ascending-degree coefficient array into a polynomial. *)

val coeffs : t -> float array
(** Copy out the coefficient array. *)

val normalise : t -> t
(** Trim trailing zero coefficients. *)

val degree : t -> int
(** Degree after normalisation; the zero polynomial has degree [-1]. *)

val is_zero : t -> bool

val constant : float -> t
val monomial : int -> t

val coeff : t -> int -> float
(** Coefficient of [x^i]; zero beyond the stored length. *)

val eval : t -> float -> float
(** Horner evaluation. *)

val eval_with_derivative : t -> float -> float * float
(** [(p x, p' x)] in one Horner pass. *)

val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val derivative : t -> t

val antiderivative : ?constant_term:float -> t -> t
(** Antiderivative; the integration constant defaults to 0. *)

val compose : t -> t -> t
(** [compose p q] is [x -> p (q x)]. *)

val shift : t -> float -> t
(** [shift p a] is [x -> p (x + a)]. *)

val shift_into : t -> float -> float array -> float array -> int
(** [shift_into p a acc scr] writes the coefficients of [shift p a]
    into the first cells of [acc] and returns how many.  It replays
    {!shift}'s floating-point program exactly, so the values written
    are bitwise the coefficients {!shift} returns — the allocation-free
    form solver inner loops use.  Both scratch arrays need length at
    least [Array.length p]; [scr] is clobbered. *)

val equal : ?tol:float -> t -> t -> bool
(** Coefficient-wise equality with optional tolerance. *)

val to_string : ?var:string -> t -> string
val pp : Format.formatter -> t -> unit

val roots_linear : float -> float -> float list
(** Real roots of [a*x + b]. *)

val roots_quadratic : float -> float -> float -> float list
(** Real roots of [a*x^2 + b*x + c], ascending, computed with the
    cancellation-free quadratic formula. *)

val roots_cubic : float -> float -> float -> float -> float list
(** Real roots of [a*x^3 + b*x^2 + c*x + d], ascending (Cardano;
    trigonometric branch when all three roots are real). *)

val real_roots_closed_form : t -> float list
(** Closed-form real roots for polynomials of degree at most 3,
    Newton-polished.  Raises [Invalid_argument] on higher degrees. *)

val real_roots_trimmed : t -> float list
(** [real_roots_closed_form] for a polynomial that is already
    normalised (no trailing zero coefficient): skips the defensive
    re-normalise copy but runs the identical floating-point program,
    so on trimmed input the two agree bitwise.  Hot paths that build
    their coefficient arrays trimmed call this directly. *)

val real_roots_trimmed_into : t -> float array -> int
(** [real_roots_trimmed] without the list: writes the polished,
    ascending roots into the first cells of [buf] (length at least 3)
    and returns how many.  Same formulas, same ordering and
    deduplication rules, so the values written are bitwise the
    elements {!real_roots_trimmed} would return — this is the
    allocation-free form solver inner loops use. *)

val durand_kerner : ?tol:float -> ?max_iter:int -> t -> Complex.t array
(** All complex roots by Durand-Kerner simultaneous iteration. *)

val real_roots : ?imag_tol:float -> t -> float list
(** Real roots of a polynomial of any degree: closed form when degree
    is at most 3, otherwise Durand-Kerner filtered to real values. *)
