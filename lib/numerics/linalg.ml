(* Dense linear algebra: just enough for MNA circuit solves and
   least-squares fitting.  Matrices are row-major [float array array]
   wrapped in an abstract record to keep dimensions honest. *)

exception Singular of string
exception Dimension_mismatch of string

type mat = {
  rows : int;
  cols : int;
  data : float array array; (* data.(i).(j), row i column j *)
}

module Vec = struct
  type t = float array

  let make n x = Array.make n x
  let init = Array.init
  let dim = Array.length
  let copy = Array.copy

  let add a b =
    if dim a <> dim b then raise (Dimension_mismatch "Vec.add");
    Array.init (dim a) (fun i -> a.(i) +. b.(i))

  let sub a b =
    if dim a <> dim b then raise (Dimension_mismatch "Vec.sub");
    Array.init (dim a) (fun i -> a.(i) -. b.(i))

  let scale s a = Array.map (fun x -> s *. x) a

  let dot a b =
    if dim a <> dim b then raise (Dimension_mismatch "Vec.dot");
    let acc = ref 0.0 in
    for i = 0 to dim a - 1 do
      acc := !acc +. (a.(i) *. b.(i))
    done;
    !acc

  let norm2 a = sqrt (dot a a)

  let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a

  let axpy ~alpha x y =
    if dim x <> dim y then raise (Dimension_mismatch "Vec.axpy");
    for i = 0 to dim x - 1 do
      y.(i) <- y.(i) +. (alpha *. x.(i))
    done

  let pp fmt v =
    Format.fprintf fmt "[|";
    Array.iteri (fun i x -> Format.fprintf fmt "%s%g" (if i > 0 then "; " else " ") x) v;
    Format.fprintf fmt " |]"
end

module Mat = struct
  type t = mat

  let make rows cols x =
    if rows < 0 || cols < 0 then invalid_arg "Mat.make";
    { rows; cols; data = Array.init rows (fun _ -> Array.make cols x) }

  let init rows cols f =
    { rows; cols; data = Array.init rows (fun i -> Array.init cols (fun j -> f i j)) }

  let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

  let of_arrays a =
    let rows = Array.length a in
    let cols = if rows = 0 then 0 else Array.length a.(0) in
    Array.iter
      (fun r -> if Array.length r <> cols then raise (Dimension_mismatch "Mat.of_arrays"))
      a;
    { rows; cols; data = Array.map Array.copy a }

  let rows m = m.rows
  let cols m = m.cols
  let get m i j = m.data.(i).(j)
  let set m i j x = m.data.(i).(j) <- x
  let add_to m i j x = m.data.(i).(j) <- m.data.(i).(j) +. x
  let copy m = { m with data = Array.map Array.copy m.data }
  let row m i = Array.copy m.data.(i)
  let to_arrays m = Array.map Array.copy m.data

  let transpose m = init m.cols m.rows (fun i j -> m.data.(j).(i))

  let add a b =
    if a.rows <> b.rows || a.cols <> b.cols then raise (Dimension_mismatch "Mat.add");
    init a.rows a.cols (fun i j -> a.data.(i).(j) +. b.data.(i).(j))

  let sub a b =
    if a.rows <> b.rows || a.cols <> b.cols then raise (Dimension_mismatch "Mat.sub");
    init a.rows a.cols (fun i j -> a.data.(i).(j) -. b.data.(i).(j))

  let scale s a = init a.rows a.cols (fun i j -> s *. a.data.(i).(j))

  let mul a b =
    if a.cols <> b.rows then raise (Dimension_mismatch "Mat.mul");
    let c = make a.rows b.cols 0.0 in
    for i = 0 to a.rows - 1 do
      for k = 0 to a.cols - 1 do
        let aik = a.data.(i).(k) in
        if aik <> 0.0 then
          for j = 0 to b.cols - 1 do
            c.data.(i).(j) <- c.data.(i).(j) +. (aik *. b.data.(k).(j))
          done
      done
    done;
    c

  let mul_vec a x =
    if a.cols <> Array.length x then raise (Dimension_mismatch "Mat.mul_vec");
    Array.init a.rows (fun i ->
        let acc = ref 0.0 in
        for j = 0 to a.cols - 1 do
          acc := !acc +. (a.data.(i).(j) *. x.(j))
        done;
        !acc)

  let norm_inf a =
    let best = ref 0.0 in
    for i = 0 to a.rows - 1 do
      let s = ref 0.0 in
      for j = 0 to a.cols - 1 do
        s := !s +. Float.abs a.data.(i).(j)
      done;
      best := Float.max !best !s
    done;
    !best

  let pp fmt m =
    Format.fprintf fmt "@[<v>";
    for i = 0 to m.rows - 1 do
      Format.fprintf fmt "[";
      for j = 0 to m.cols - 1 do
        Format.fprintf fmt "%s%10.4g" (if j > 0 then " " else "") m.data.(i).(j)
      done;
      Format.fprintf fmt "]@,"
    done;
    Format.fprintf fmt "@]"
end

(* ------------------------------------------------------------------ *)
(* LU decomposition with partial pivoting                              *)
(* ------------------------------------------------------------------ *)

type lu = {
  lu_mat : mat; (* packed L (unit diagonal, below) and U (on/above) *)
  perm : int array; (* row permutation *)
  sign : float; (* determinant sign from row swaps *)
}

(* Factor [m] in place into packed L/U form, recording the row
   permutation in [perm] (overwritten).  Returns the determinant sign.
   Allocation-free: the workhorse behind both [lu_decompose] and the
   refill-in-place dense MNA backend. *)
let factor_in_place m perm =
  if m.rows <> m.cols then raise (Dimension_mismatch "lu_factor: square required");
  let n = m.rows in
  if Array.length perm <> n then raise (Dimension_mismatch "lu_factor: perm length");
  for i = 0 to n - 1 do
    perm.(i) <- i
  done;
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* find pivot *)
    let pivot = ref k in
    let best = ref (Float.abs m.data.(k).(k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs m.data.(i).(k) in
      if v > !best then begin
        best := v;
        pivot := i
      end
    done;
    if !best = 0.0 then
      raise (Singular (Printf.sprintf "lu_decompose: zero pivot at column %d" k));
    if !pivot <> k then begin
      let tmp = m.data.(k) in
      m.data.(k) <- m.data.(!pivot);
      m.data.(!pivot) <- tmp;
      let t = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- t;
      sign := -. !sign
    end;
    let pivval = m.data.(k).(k) in
    for i = k + 1 to n - 1 do
      let factor = m.data.(i).(k) /. pivval in
      m.data.(i).(k) <- factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          m.data.(i).(j) <- m.data.(i).(j) -. (factor *. m.data.(k).(j))
        done
    done
  done;
  !sign

let lu_decompose a =
  let m = Mat.copy a in
  let perm = Array.make a.rows 0 in
  let sign = factor_in_place m perm in
  { lu_mat = m; perm; sign }

let lu_factor_into ~src ~dst perm =
  if dst.rows <> src.rows || dst.cols <> src.cols then
    raise (Dimension_mismatch "lu_factor_into: shape mismatch");
  for i = 0 to src.rows - 1 do
    Array.blit src.data.(i) 0 dst.data.(i) 0 src.cols
  done;
  ignore (factor_in_place dst perm)

let lu_solve_packed lu_mat perm b =
  let n = lu_mat.rows in
  if Array.length b <> n then raise (Dimension_mismatch "lu_solve");
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution with unit-diagonal L *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (lu_mat.data.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* back substitution with U *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (lu_mat.data.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. lu_mat.data.(i).(i)
  done;
  x

let lu_solve f b = lu_solve_packed f.lu_mat f.perm b

let solve a b = lu_solve (lu_decompose a) b

let det a =
  match lu_decompose a with
  | exception Singular _ -> 0.0
  | f ->
      let d = ref f.sign in
      for i = 0 to f.lu_mat.rows - 1 do
        d := !d *. f.lu_mat.data.(i).(i)
      done;
      !d

let inverse a =
  let n = a.rows in
  let f = lu_decompose a in
  let inv = Mat.make n n 0.0 in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1.0 else 0.0) in
    let col = lu_solve f e in
    for i = 0 to n - 1 do
      inv.data.(i).(j) <- col.(i)
    done
  done;
  inv

(* ------------------------------------------------------------------ *)
(* QR decomposition (Householder) and least squares                    *)
(* ------------------------------------------------------------------ *)

(* Householder QR applied in place to solve min ||A x - b||_2 for a
   full-column-rank A with rows >= cols.  Returns x of length cols. *)
let qr_least_squares a b =
  let m = a.rows and n = a.cols in
  if m < n then raise (Dimension_mismatch "qr_least_squares: rows < cols");
  if Array.length b <> m then raise (Dimension_mismatch "qr_least_squares: rhs");
  let r = Mat.copy a in
  let y = Array.copy b in
  for k = 0 to n - 1 do
    (* build Householder vector for column k *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      norm := !norm +. (r.data.(i).(k) *. r.data.(i).(k))
    done;
    let norm = sqrt !norm in
    if norm = 0.0 then
      raise (Singular (Printf.sprintf "qr_least_squares: rank deficient at col %d" k));
    let alpha = if r.data.(k).(k) > 0.0 then -.norm else norm in
    let v = Array.make m 0.0 in
    v.(k) <- r.data.(k).(k) -. alpha;
    for i = k + 1 to m - 1 do
      v.(i) <- r.data.(i).(k)
    done;
    let vtv = ref 0.0 in
    for i = k to m - 1 do
      vtv := !vtv +. (v.(i) *. v.(i))
    done;
    if !vtv > 0.0 then begin
      let beta = 2.0 /. !vtv in
      (* apply H = I - beta v v^T to R columns k..n-1 *)
      for j = k to n - 1 do
        let dot = ref 0.0 in
        for i = k to m - 1 do
          dot := !dot +. (v.(i) *. r.data.(i).(j))
        done;
        let s = beta *. !dot in
        for i = k to m - 1 do
          r.data.(i).(j) <- r.data.(i).(j) -. (s *. v.(i))
        done
      done;
      (* apply to rhs *)
      let dot = ref 0.0 in
      for i = k to m - 1 do
        dot := !dot +. (v.(i) *. y.(i))
      done;
      let s = beta *. !dot in
      for i = k to m - 1 do
        y.(i) <- y.(i) -. (s *. v.(i))
      done
    end
  done;
  (* back substitution on the upper-triangular n x n block *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (r.data.(i).(j) *. x.(j))
    done;
    if r.data.(i).(i) = 0.0 then raise (Singular "qr_least_squares: zero diagonal");
    x.(i) <- !acc /. r.data.(i).(i)
  done;
  x
