(** Deterministic pseudo-random numbers (SplitMix64) for reproducible
    Monte-Carlo studies. *)

type t

val create : ?seed:int64 -> unit -> t

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val uniform : t -> float
(** Uniform in [[0, 1)]. *)

val uniform_range : t -> lo:float -> hi:float -> float

val gaussian : ?mean:float -> ?sigma:float -> t -> float
(** Normal variate by Box-Muller. *)

val split : t -> t
(** Derive an independent stream, advancing [t] by one draw. *)

val jump : t -> int -> unit
(** [jump t n] advances [t] by exactly [n] draws in O(1) — after it,
    [t] produces the same values as if [n] values had been consumed.
    Raises [Invalid_argument] on negative [n]. *)

val stream : t -> int -> t
(** [stream t i] derives the [i]-th independent sub-stream of [t]
    {e without} mutating [t]: stream [i] is a pure function of [t]'s
    current state and [i], so it yields the same draws no matter how
    many other streams are created, in what order, or on which domain —
    the property that keeps parallel Monte-Carlo runs byte-identical at
    any job count.  Raises [Invalid_argument] on negative [i]. *)
