(** Sparse linear algebra for circuit-sized systems: a pattern-frozen
    compressed-sparse-row matrix refilled in place between solves, and a
    left-looking (Gilbert-Peierls) sparse LU with partial pivoting whose
    workspace is reused across refactorisations.

    The intended life cycle mirrors a Newton loop:

    {[
      let b = Sparse.Builder.create n in
      (* symbolic phase: register every (row, col) that will ever be
         written; duplicates are fine *)
      Sparse.Builder.add b i j;
      ...
      let m = Sparse.Builder.finalize b in
      let lu = Sparse.lu_create m in
      (* numeric phase, once per iteration, no allocation: *)
      Sparse.clear m;
      Sparse.add_slot m (Sparse.slot m i j) v;
      ...
      Sparse.refactor lu m;
      let x = Sparse.lu_solve lu rhs in
      ...
    ]} *)

exception Singular of string

type t
(** A square sparse matrix with a frozen sparsity pattern. *)

(** Pattern accumulation before the structure is frozen. *)
module Builder : sig
  type matrix := t
  type t

  val create : int -> t
  (** [create n] starts an empty pattern for an [n x n] matrix. *)

  val add : t -> int -> int -> unit
  (** Register location [(row, col)].  Duplicates are collapsed.
      Raises [Invalid_argument] on out-of-range indices. *)

  val finalize : t -> matrix
  (** Freeze the pattern into a CSR matrix with all values zero. *)
end

val dim : t -> int
val nnz : t -> int

val slot : t -> int -> int -> int
(** Stable index of a pattern location in the value array; the handle
    used for in-place refill.  Raises [Invalid_argument] when [(i, j)]
    is not part of the pattern. *)

val clear : t -> unit
(** Zero every stored value, keeping the pattern. *)

val add_slot : t -> int -> float -> unit
(** [add_slot m s v] accumulates [v] into the entry with handle [s]. *)

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] accumulates into location [(i, j)]; convenience
    wrapper over {!slot} and {!add_slot}. *)

val get : t -> int -> int -> float
(** Entry value; [0.] for locations outside the pattern. *)

val mul_vec : t -> float array -> float array
(** Sparse matrix-vector product [m x]. *)

val residual_inf : t -> float array -> float array -> float
(** [residual_inf m x b] is [||m x - b||_inf], computed without
    allocating. *)

type lu
(** Reusable factorisation workspace: numeric L/U factors plus the
    scratch arrays of the left-looking factorisation.  Allocated once
    per structure; {!refactor} grows its fill arrays only when needed
    and otherwise runs allocation-free. *)

val lu_create : t -> lu

val refactor : ?orig_col:(int -> int) -> lu -> t -> unit
(** Factor the matrix's current values with partial pivoting,
    overwriting the workspace's previous factors.  Raises {!Singular}
    on a structurally or numerically singular matrix.  [orig_col] maps
    a column of this (possibly permuted) matrix back to the caller's
    original unknown index; when provided and non-identity at the
    failing column, the zero-pivot message also names that original
    unknown. *)

val amd_order : n:int -> (int * int) array -> int array * int
(** Greedy minimum-degree ordering of the symmetrised pattern graph
    (the exact-degree special case of approximate minimum degree),
    with deterministic lowest-index tie-breaking.  Returns
    [(perm, fill)]: [perm.(k)] is the original index eliminated at
    position [k], and [fill] is the symbolic factorisation fill of
    that order — the sum of neighbourhood sizes at elimination time,
    an nnz(L) proxy. *)

val natural_fill : n:int -> (int * int) array -> int
(** Symbolic factorisation fill of the identity (natural) order on the
    symmetrised pattern graph, comparable with the fill returned by
    {!amd_order}. *)

val lu_solve : lu -> float array -> float array
(** Solve [A x = b] using the factors of the last {!refactor}. *)

val solve : t -> float array -> float array
(** One-shot solve with a throwaway workspace. *)
