(* Sparse matrices for MNA-style systems.

   Storage is compressed sparse row with a frozen pattern: a Builder
   collects the set of (row, col) locations once (the symbolic phase),
   finalize sorts them into CSR arrays, and from then on only the value
   array changes (the numeric phase).  A hashtable from packed (i, j)
   keys to value slots supports both ad-hoc [add_to] and the slot
   handles that callers cache for allocation-free refill.

   The factorisation is a left-looking Gilbert-Peierls sparse LU with
   partial pivoting.  It is formulated on the CSC view of the matrix:
   the CSR arrays of A are exactly the CSC arrays of A^T, so we factor
   P A^T = L U column by column (each column of A^T is a row of A) and
   solve A x = b through the transposed factors:

     A = (P^-1 L U)^T  =>  U^T L^T (x renumbered by P) = b

   which needs only gather-style triangular solves over the stored
   columns.  Row pivoting on A^T is column pivoting on A; either is
   enough to keep MNA matrices (zero diagonals on voltage-source rows)
   stable.

   The L/U fill arrays live in a reusable workspace ([lu]) that grows
   geometrically and is otherwise allocation-free across refactors, so
   a Newton loop can refactor every iteration without churning the
   GC. *)

exception Singular of string

type t = {
  n : int;
  row_ptr : int array; (* n+1 row starts into cols/values *)
  cols : int array; (* column of each entry, sorted within a row *)
  values : float array;
  index : (int, int) Hashtbl.t; (* packed i*n+j -> slot *)
}

module Builder = struct
  type matrix = t

  type t = {
    n : int;
    seen : (int, unit) Hashtbl.t;
  }

  let create n =
    if n < 0 then invalid_arg "Sparse.Builder.create: negative dimension";
    { n; seen = Hashtbl.create (4 * (n + 1)) }

  let add b i j =
    if i < 0 || j < 0 || i >= b.n || j >= b.n then
      invalid_arg (Printf.sprintf "Sparse.Builder.add: (%d, %d) out of range" i j);
    let key = (i * b.n) + j in
    if not (Hashtbl.mem b.seen key) then Hashtbl.add b.seen key ()

  let finalize b : matrix =
    let nnz = Hashtbl.length b.seen in
    let keys = Array.make nnz 0 in
    let k = ref 0 in
    Hashtbl.iter
      (fun key () ->
        keys.(!k) <- key;
        incr k)
      b.seen;
    (* packed keys sort row-major, which is exactly CSR order *)
    Array.sort compare keys;
    let row_ptr = Array.make (b.n + 1) 0 in
    let cols = Array.make nnz 0 in
    let index = Hashtbl.create (2 * (nnz + 1)) in
    Array.iteri
      (fun slot key ->
        let i = key / b.n in
        cols.(slot) <- key mod b.n;
        row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
        Hashtbl.add index key slot)
      keys;
    for i = 0 to b.n - 1 do
      row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
    done;
    { n = b.n; row_ptr; cols; values = Array.make nnz 0.0; index }
end

let dim m = m.n
let nnz m = Array.length m.cols

(* ------------------------------------------------------------------ *)
(* Fill-reducing ordering                                              *)
(* ------------------------------------------------------------------ *)

(* Greedy minimum-degree ordering (the exact-degree special case of the
   AMD family) on the symmetrised pattern graph, plus a symbolic fill
   estimate for an arbitrary elimination order.  Eliminating a vertex
   connects its remaining neighbours into a clique — exactly the fill a
   Cholesky-like factorisation of the symmetrised pattern would create —
   and the reported count is the sum of neighbourhood sizes at
   elimination time, an nnz(L) proxy that tracks the factorisation's
   work and memory.  Deterministic: degree ties break toward the lowest
   vertex index. *)

(* Symmetrised adjacency (no self loops) as per-vertex hash sets. *)
let ordering_adjacency ~n pattern =
  let adj = Array.init n (fun _ -> Hashtbl.create 8) in
  Array.iter
    (fun (i, j) ->
      if i <> j && i >= 0 && j >= 0 && i < n && j < n then begin
        if not (Hashtbl.mem adj.(i) j) then Hashtbl.add adj.(i) j ();
        if not (Hashtbl.mem adj.(j) i) then Hashtbl.add adj.(j) i ()
      end)
    pattern;
  adj

(* Eliminate every vertex in the order chosen by [next], maintaining
   the quotient fill graph; returns the order and the symbolic fill. *)
let ordering_eliminate ~n ~adj ~next =
  let eliminated = Array.make n false in
  let perm = Array.make n 0 in
  let fill = ref 0 in
  for k = 0 to n - 1 do
    let v = next eliminated k in
    perm.(k) <- v;
    eliminated.(v) <- true;
    let nbrs = Hashtbl.fold (fun u () acc -> u :: acc) adj.(v) [] in
    fill := !fill + List.length nbrs;
    List.iter (fun u -> Hashtbl.remove adj.(u) v) nbrs;
    let rec clique = function
      | [] -> ()
      | u :: rest ->
          List.iter
            (fun w ->
              if not (Hashtbl.mem adj.(u) w) then begin
                Hashtbl.add adj.(u) w ();
                Hashtbl.add adj.(w) u ()
              end)
            rest;
          clique rest
    in
    clique nbrs
  done;
  (perm, !fill)

let amd_order ~n pattern =
  let adj = ordering_adjacency ~n pattern in
  ordering_eliminate ~n ~adj ~next:(fun eliminated _k ->
      let best = ref (-1) and bestd = ref max_int in
      for v = 0 to n - 1 do
        if not eliminated.(v) then begin
          let d = Hashtbl.length adj.(v) in
          if d < !bestd then begin
            bestd := d;
            best := v
          end
        end
      done;
      !best)

let natural_fill ~n pattern =
  let adj = ordering_adjacency ~n pattern in
  snd (ordering_eliminate ~n ~adj ~next:(fun _ k -> k))

let slot m i j =
  if i < 0 || j < 0 || i >= m.n || j >= m.n then
    invalid_arg (Printf.sprintf "Sparse.slot: (%d, %d) out of range" i j);
  match Hashtbl.find_opt m.index ((i * m.n) + j) with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sparse.slot: (%d, %d) not in pattern" i j)

let clear m = Array.fill m.values 0 (Array.length m.values) 0.0
let add_slot m s v = m.values.(s) <- m.values.(s) +. v
let add_to m i j v = add_slot m (slot m i j) v

let get m i j =
  if i < 0 || j < 0 || i >= m.n || j >= m.n then
    invalid_arg (Printf.sprintf "Sparse.get: (%d, %d) out of range" i j);
  match Hashtbl.find_opt m.index ((i * m.n) + j) with
  | Some s -> m.values.(s)
  | None -> 0.0

let mul_vec m x =
  if Array.length x <> m.n then invalid_arg "Sparse.mul_vec: dimension mismatch";
  Array.init m.n (fun i ->
      let acc = ref 0.0 in
      for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        acc := !acc +. (m.values.(p) *. x.(m.cols.(p)))
      done;
      !acc)

let residual_inf m x b =
  if Array.length x <> m.n || Array.length b <> m.n then
    invalid_arg "Sparse.residual_inf: dimension mismatch";
  let worst = ref 0.0 in
  for i = 0 to m.n - 1 do
    let acc = ref (-.b.(i)) in
    for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      acc := !acc +. (m.values.(p) *. x.(m.cols.(p)))
    done;
    worst := Float.max !worst (Float.abs !acc)
  done;
  !worst

(* ------------------------------------------------------------------ *)
(* Left-looking LU with partial pivoting                               *)
(* ------------------------------------------------------------------ *)

type lu = {
  lu_n : int;
  lp : int array; (* n+1 column starts of L (unit diagonal stored first) *)
  mutable li : int array; (* row indices of L entries, original numbering *)
  mutable lx : float array;
  up : int array; (* n+1 column starts of U (diagonal stored last) *)
  mutable ui : int array; (* row indices of U entries, pivotal numbering *)
  mutable ux : float array;
  pinv : int array; (* original row -> pivotal position *)
  p : int array; (* pivotal position -> original row *)
  wx : float array; (* dense accumulator, zero outside the active column *)
  stack : int array; (* DFS node stack *)
  pstack : int array; (* DFS edge-position stack *)
  order : int array; (* topological reach, filled from the top down *)
  mark : int array; (* DFS visited stamps *)
  y : float array; (* solve scratch *)
}

let lu_create m =
  let n = m.n in
  let cap = max 16 ((4 * nnz m) + n + 1) in
  {
    lu_n = n;
    lp = Array.make (n + 1) 0;
    li = Array.make cap 0;
    lx = Array.make cap 0.0;
    up = Array.make (n + 1) 0;
    ui = Array.make cap 0;
    ux = Array.make cap 0.0;
    pinv = Array.make n (-1);
    p = Array.make n 0;
    wx = Array.make n 0.0;
    stack = Array.make (max n 1) 0;
    pstack = Array.make (max n 1) 0;
    order = Array.make (max n 1) 0;
    mark = Array.make (max n 1) 0;
    y = Array.make n 0.0;
  }

let refactor ?orig_col lu m =
  let n = m.n in
  if lu.lu_n <> n then invalid_arg "Sparse.refactor: workspace dimension mismatch";
  let mp = m.row_ptr and mi = m.cols and mx = m.values in
  Array.fill lu.pinv 0 n (-1);
  if n > 0 then begin
    Array.fill lu.mark 0 n 0;
    Array.fill lu.wx 0 n 0.0
  end;
  let lnz = ref 0 and unz = ref 0 in
  for k = 0 to n - 1 do
    lu.lp.(k) <- !lnz;
    lu.up.(k) <- !unz;
    (* grow-only capacity: a column adds at most n+1 entries to each *)
    let need_l = !lnz + n + 1 and need_u = !unz + n + 1 in
    if Array.length lu.li < need_l then begin
      let cap = max need_l (2 * Array.length lu.li) in
      let li = Array.make cap 0 and lx = Array.make cap 0.0 in
      Array.blit lu.li 0 li 0 !lnz;
      Array.blit lu.lx 0 lx 0 !lnz;
      lu.li <- li;
      lu.lx <- lx
    end;
    if Array.length lu.ui < need_u then begin
      let cap = max need_u (2 * Array.length lu.ui) in
      let ui = Array.make cap 0 and ux = Array.make cap 0.0 in
      Array.blit lu.ui 0 ui 0 !unz;
      Array.blit lu.ux 0 ux 0 !unz;
      lu.ui <- ui;
      lu.ux <- ux
    end;
    (* symbolic: topological reach of row k of A (column k of A^T)
       through the graph of the L columns computed so far *)
    let stamp = k + 1 in
    let top = ref n in
    for p0 = mp.(k) to mp.(k + 1) - 1 do
      let root = mi.(p0) in
      if lu.mark.(root) <> stamp then begin
        let head = ref 0 in
        lu.stack.(0) <- root;
        while !head >= 0 do
          let node = lu.stack.(!head) in
          if lu.mark.(node) <> stamp then begin
            lu.mark.(node) <- stamp;
            lu.pstack.(!head) <-
              (if lu.pinv.(node) < 0 then 0 else lu.lp.(lu.pinv.(node)) + 1)
          end;
          let jnew = lu.pinv.(node) in
          let pend = if jnew < 0 then 0 else lu.lp.(jnew + 1) in
          let pos = ref lu.pstack.(!head) in
          let descended = ref false in
          while (not !descended) && !pos < pend do
            let child = lu.li.(!pos) in
            incr pos;
            if lu.mark.(child) <> stamp then begin
              lu.pstack.(!head) <- !pos;
              incr head;
              lu.stack.(!head) <- child;
              descended := true
            end
          done;
          if not !descended then begin
            decr head;
            decr top;
            lu.order.(!top) <- node
          end
        done
      end
    done;
    (* numeric: scatter the row, then eliminate with the already
       pivotal columns in topological order *)
    for p0 = mp.(k) to mp.(k + 1) - 1 do
      lu.wx.(mi.(p0)) <- mx.(p0)
    done;
    for px = !top to n - 1 do
      let i = lu.order.(px) in
      let jnew = lu.pinv.(i) in
      if jnew >= 0 then begin
        let xi = lu.wx.(i) in
        if xi <> 0.0 then
          for p0 = lu.lp.(jnew) + 1 to lu.lp.(jnew + 1) - 1 do
            let r = lu.li.(p0) in
            lu.wx.(r) <- lu.wx.(r) -. (lu.lx.(p0) *. xi)
          done
      end
    done;
    (* pivotal entries feed U; the largest non-pivotal entry pivots *)
    let ipiv = ref (-1) and amax = ref 0.0 in
    for px = !top to n - 1 do
      let i = lu.order.(px) in
      let jnew = lu.pinv.(i) in
      if jnew >= 0 then begin
        lu.ui.(!unz) <- jnew;
        lu.ux.(!unz) <- lu.wx.(i);
        incr unz
      end
      else begin
        let a = Float.abs lu.wx.(i) in
        if a > !amax then begin
          amax := a;
          ipiv := i
        end
      end
    done;
    if !ipiv < 0 || !amax = 0.0 then begin
      (* when the caller permuted the system, also name the original
         (pre-permutation) unknown so diagnostics point at the real
         circuit quantity *)
      let msg =
        match orig_col with
        | Some f when f k <> k ->
            Printf.sprintf
              "Sparse.refactor: zero pivot at column %d (original unknown %d)"
              k (f k)
        | _ -> Printf.sprintf "Sparse.refactor: zero pivot at column %d" k
      in
      raise (Singular msg)
    end;
    let pivval = lu.wx.(!ipiv) in
    lu.pinv.(!ipiv) <- k;
    lu.p.(k) <- !ipiv;
    lu.li.(!lnz) <- !ipiv;
    lu.lx.(!lnz) <- 1.0;
    incr lnz;
    for px = !top to n - 1 do
      let i = lu.order.(px) in
      if lu.pinv.(i) < 0 then begin
        lu.li.(!lnz) <- i;
        lu.lx.(!lnz) <- lu.wx.(i) /. pivval;
        incr lnz
      end;
      lu.wx.(i) <- 0.0
    done;
    lu.ui.(!unz) <- k;
    lu.ux.(!unz) <- pivval;
    incr unz
  done;
  lu.lp.(n) <- !lnz;
  lu.up.(n) <- !unz

let lu_solve lu b =
  let n = lu.lu_n in
  if Array.length b <> n then invalid_arg "Sparse.lu_solve: dimension mismatch";
  let y = lu.y in
  (* forward solve U^T y = b; U columns store their diagonal last *)
  for k = 0 to n - 1 do
    let acc = ref b.(k) in
    let p1 = lu.up.(k + 1) in
    for p = lu.up.(k) to p1 - 2 do
      acc := !acc -. (lu.ux.(p) *. y.(lu.ui.(p)))
    done;
    y.(k) <- !acc /. lu.ux.(p1 - 1)
  done;
  (* backward solve L^T z = y in place; L columns store a unit diagonal
     first and original row indices below *)
  for k = n - 1 downto 0 do
    let acc = ref y.(k) in
    for p = lu.lp.(k) + 1 to lu.lp.(k + 1) - 1 do
      acc := !acc -. (lu.lx.(p) *. y.(lu.pinv.(lu.li.(p))))
    done;
    y.(k) <- !acc
  done;
  (* undo the pivoting renumber: x_i = z_(pinv i) *)
  Array.init n (fun i -> y.(lu.pinv.(i)))

let solve m b =
  let lu = lu_create m in
  refactor lu m;
  lu_solve lu b
