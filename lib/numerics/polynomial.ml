(* Dense univariate polynomials with real coefficients.

   Representation: [c.(i)] is the coefficient of [x^i].  The zero
   polynomial is the empty array (or any array of zeros); [normalise]
   trims trailing zeros so that [degree] is meaningful. *)

type t = float array

let zero : t = [||]
let one : t = [| 1.0 |]

let of_coeffs c = Array.copy c

let coeffs p = Array.copy p

let normalise p =
  let n = ref (Array.length p) in
  while !n > 0 && p.(!n - 1) = 0.0 do
    decr n
  done;
  Array.sub p 0 !n

let degree p =
  let p = normalise p in
  Array.length p - 1

let is_zero p = degree p < 0

let constant c = if c = 0.0 then zero else [| c |]

(* x^n with unit coefficient *)
let monomial n =
  if n < 0 then invalid_arg "Polynomial.monomial: negative exponent";
  let p = Array.make (n + 1) 0.0 in
  p.(n) <- 1.0;
  p

let coeff p i = if i < 0 || i >= Array.length p then 0.0 else p.(i)

let eval p x =
  let acc = ref 0.0 in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

(* Evaluate p and p' in a single Horner pass. *)
let eval_with_derivative p x =
  let v = ref 0.0 and d = ref 0.0 in
  for i = Array.length p - 1 downto 0 do
    d := (!d *. x) +. !v;
    v := (!v *. x) +. p.(i)
  done;
  (!v, !d)

let add p q =
  let n = max (Array.length p) (Array.length q) in
  normalise (Array.init n (fun i -> coeff p i +. coeff q i))

let neg p = Array.map (fun c -> -.c) p

let sub p q = add p (neg q)

let scale s p = normalise (Array.map (fun c -> s *. c) p)

let mul p q =
  let p = normalise p and q = normalise q in
  if Array.length p = 0 || Array.length q = 0 then zero
  else begin
    let r = Array.make (Array.length p + Array.length q - 1) 0.0 in
    Array.iteri
      (fun i pi -> Array.iteri (fun j qj -> r.(i + j) <- r.(i + j) +. (pi *. qj)) q)
      p;
    r
  end

let derivative p =
  let n = Array.length p in
  if n <= 1 then zero
  else Array.init (n - 1) (fun i -> float_of_int (i + 1) *. p.(i + 1))

(* Antiderivative with integration constant [c]. *)
let antiderivative ?(constant_term = 0.0) p =
  let n = Array.length p in
  Array.init (n + 1) (fun i ->
      if i = 0 then constant_term else p.(i - 1) /. float_of_int i)

(* Composition p(q(x)) by Horner over polynomial arithmetic. *)
let compose p q =
  let acc = ref zero in
  for i = Array.length p - 1 downto 0 do
    acc := add (mul !acc q) (constant p.(i))
  done;
  normalise !acc

(* Shift the argument: [shift p a] is the polynomial x -> p (x + a). *)
let shift p a = compose p [| a; 1.0 |]

(* [shift] into caller scratch: writes the coefficients of [shift p a]
   to the first cells of [acc] and returns how many.  This replays
   [compose p [| a; 1.0 |]] operation for operation — the synthetic
   Horner mul-into-zeroed-scratch, [add]'s elementwise [+.] against the
   constant term (including the [+. 0.0] padding [add] applies beyond
   the constant's length) and [normalise]'s trailing [= 0.0] trim — so
   the values written are bitwise the coefficients {!shift} returns,
   without its intermediate allocations.  Both scratch arrays need
   length at least [Array.length p]; [scr] is clobbered. *)
let shift_into p a acc scr =
  let np = Array.length p in
  let la = ref 0 in
  for i = np - 1 downto 0 do
    (* scr <- mul acc [| a; 1.0 |]; empty acc gives the zero poly *)
    let lm = if !la = 0 then 0 else !la + 1 in
    if lm > 0 then begin
      Array.fill scr 0 lm 0.0;
      for ii = 0 to !la - 1 do
        let c = Array.unsafe_get acc ii in
        Array.unsafe_set scr ii (Array.unsafe_get scr ii +. (c *. a));
        Array.unsafe_set scr (ii + 1) (Array.unsafe_get scr (ii + 1) +. (c *. 1.0))
      done
    end;
    (* acc <- normalise (add scr (constant p.(i))) *)
    let ci = p.(i) in
    let lc = if ci = 0.0 then 0 else 1 in
    let n = if lm > lc then lm else lc in
    for k = 0 to n - 1 do
      let mv = if k < lm then Array.unsafe_get scr k else 0.0 in
      let cv = if k < lc then ci else 0.0 in
      Array.unsafe_set acc k (mv +. cv)
    done;
    let nn = ref n in
    while !nn > 0 && acc.(!nn - 1) = 0.0 do
      decr nn
    done;
    la := !nn
  done;
  !la

let equal ?(tol = 0.0) p q =
  let n = max (Array.length p) (Array.length q) in
  let rec go i =
    i >= n || (Float.abs (coeff p i -. coeff q i) <= tol && go (i + 1))
  in
  go 0

let to_string ?(var = "x") p =
  let p = normalise p in
  if Array.length p = 0 then "0"
  else begin
    let buf = Buffer.create 64 in
    let first = ref true in
    for i = Array.length p - 1 downto 0 do
      let c = p.(i) in
      if c <> 0.0 then begin
        if !first then begin
          if c < 0.0 then Buffer.add_string buf "-";
          first := false
        end
        else Buffer.add_string buf (if c < 0.0 then " - " else " + ");
        let a = Float.abs c in
        if i = 0 then Buffer.add_string buf (Printf.sprintf "%g" a)
        else begin
          if a <> 1.0 then Buffer.add_string buf (Printf.sprintf "%g*" a);
          if i = 1 then Buffer.add_string buf var
          else Buffer.add_string buf (Printf.sprintf "%s^%d" var i)
        end
      end
    done;
    Buffer.contents buf
  end

let pp fmt p = Format.pp_print_string fmt (to_string p)

(* ------------------------------------------------------------------ *)
(* Closed-form real roots for degree <= 3                              *)
(* ------------------------------------------------------------------ *)

(* Real roots of a*x + b = 0. *)
let roots_linear a b = if a = 0.0 then [] else [ -.b /. a ]

(* Numerically stable real roots of a*x^2 + b*x + c = 0, in ascending
   order.  Uses the q = -(b + sign(b)*sqrt(disc))/2 trick to avoid
   cancellation. *)
let roots_quadratic a b c =
  if a = 0.0 then roots_linear b c
  else begin
    let disc = (b *. b) -. (4.0 *. a *. c) in
    if disc < 0.0 then []
    else if disc = 0.0 then [ -.b /. (2.0 *. a) ]
    else begin
      let sq = sqrt disc in
      let q = -0.5 *. (b +. (Special.signum b *. sq)) in
      let q = if b = 0.0 then -0.5 *. sq else q in
      let r1 = q /. a and r2 = c /. q in
      if r1 <= r2 then [ r1; r2 ] else [ r2; r1 ]
    end
  end

(* Real roots of a*x^3 + b*x^2 + c*x + d = 0, ascending.  Cardano with
   the trigonometric branch for three real roots; the depressed cubic
   t^3 + p t + q with x = t - b/(3a). *)
let roots_cubic a b c d =
  if a = 0.0 then roots_quadratic b c d
  else begin
    let b = b /. a and c = c /. a and d = d /. a in
    let shift = b /. 3.0 in
    let p = c -. (b *. b /. 3.0) in
    let q = ((2.0 *. b *. b *. b) -. (9.0 *. b *. c)) /. 27.0 +. d in
    let disc = ((q *. q) /. 4.0) +. ((p *. p *. p) /. 27.0) in
    let ts =
      if Float.abs p < 1e-300 && Float.abs q < 1e-300 then [ 0.0 ]
      else if disc > 0.0 then begin
        (* one real root *)
        let sq = sqrt disc in
        let u = Special.cbrt ((-.q /. 2.0) +. sq) in
        let v = Special.cbrt ((-.q /. 2.0) -. sq) in
        [ u +. v ]
      end
      else if disc = 0.0 then begin
        (* repeated roots, all real *)
        let u = Special.cbrt (-.q /. 2.0) in
        [ 2.0 *. u; -.u ]
      end
      else begin
        (* three distinct real roots: trigonometric method *)
        let r = sqrt (-.p *. p *. p /. 27.0) in
        let phi = acos (Float.max (-1.0) (Float.min 1.0 (-.q /. (2.0 *. r)))) in
        let m = 2.0 *. sqrt (-.p /. 3.0) in
        [
          m *. cos (phi /. 3.0);
          m *. cos ((phi +. (2.0 *. Float.pi)) /. 3.0);
          m *. cos ((phi +. (4.0 *. Float.pi)) /. 3.0);
        ]
      end
    in
    let roots = List.map (fun t -> t -. shift) ts in
    List.sort_uniq compare roots
  end

(* One step of Newton polishing to tighten a closed-form root. *)
let polish p x =
  let v, d = eval_with_derivative p x in
  if d = 0.0 || not (Float.is_finite (x -. (v /. d))) then x
  else begin
    let x' = x -. (v /. d) in
    let v' = eval p x' in
    if Float.abs v' <= Float.abs v then x' else x
  end

(* Allocation-free mirror of the closed-form pipeline below: the same
   per-degree root formulas, the same [sort_uniq]/ordering rules
   expressed over a caller buffer of length >= 3 instead of lists, the
   same Newton polish, the same final ascending sort — so the values
   written are bitwise those of {!real_roots_trimmed}, element for
   element.  Hot solver loops use this to keep root extraction off the
   allocator. *)

let roots_linear_into a b buf =
  if a = 0.0 then 0
  else begin
    buf.(0) <- -.b /. a;
    1
  end

let roots_quadratic_into a b c buf =
  if a = 0.0 then roots_linear_into b c buf
  else begin
    let disc = (b *. b) -. (4.0 *. a *. c) in
    if disc < 0.0 then 0
    else if disc = 0.0 then begin
      buf.(0) <- -.b /. (2.0 *. a);
      1
    end
    else begin
      let sq = sqrt disc in
      let q = -0.5 *. (b +. (Special.signum b *. sq)) in
      let q = if b = 0.0 then -0.5 *. sq else q in
      let r1 = q /. a and r2 = c /. q in
      if r1 <= r2 then begin
        buf.(0) <- r1;
        buf.(1) <- r2
      end
      else begin
        buf.(0) <- r2;
        buf.(1) <- r1
      end;
      2
    end
  end

(* Ascending compare-sort of buf.(0 .. n-1) (n <= 3) followed by
   adjacent dedup — the fixed-size equivalent of
   [List.sort_uniq compare] (and of a plain [List.sort compare] when
   the inputs are distinct). *)
let sort3_into buf n =
  if n >= 2 then begin
    if compare buf.(0) buf.(1) > 0 then begin
      let t = buf.(0) in
      buf.(0) <- buf.(1);
      buf.(1) <- t
    end;
    if n = 3 then begin
      if compare buf.(1) buf.(2) > 0 then begin
        let t = buf.(1) in
        buf.(1) <- buf.(2);
        buf.(2) <- t
      end;
      if compare buf.(0) buf.(1) > 0 then begin
        let t = buf.(0) in
        buf.(0) <- buf.(1);
        buf.(1) <- t
      end
    end
  end;
  n

let dedup3_into buf n =
  let kept = ref (if n > 0 then 1 else 0) in
  for i = 1 to n - 1 do
    if compare buf.(i) buf.(!kept - 1) <> 0 then begin
      buf.(!kept) <- buf.(i);
      incr kept
    end
  done;
  !kept

let roots_cubic_into a b c d buf =
  if a = 0.0 then roots_quadratic_into b c d buf
  else begin
    let b = b /. a and c = c /. a and d = d /. a in
    let shift = b /. 3.0 in
    let p = c -. (b *. b /. 3.0) in
    let q = ((2.0 *. b *. b *. b) -. (9.0 *. b *. c)) /. 27.0 +. d in
    let disc = ((q *. q) /. 4.0) +. ((p *. p *. p) /. 27.0) in
    let n =
      if Float.abs p < 1e-300 && Float.abs q < 1e-300 then begin
        buf.(0) <- 0.0;
        1
      end
      else if disc > 0.0 then begin
        let sq = sqrt disc in
        let u = Special.cbrt ((-.q /. 2.0) +. sq) in
        let v = Special.cbrt ((-.q /. 2.0) -. sq) in
        buf.(0) <- u +. v;
        1
      end
      else if disc = 0.0 then begin
        let u = Special.cbrt (-.q /. 2.0) in
        buf.(0) <- 2.0 *. u;
        buf.(1) <- -.u;
        2
      end
      else begin
        let r = sqrt (-.p *. p *. p /. 27.0) in
        let phi = acos (Float.max (-1.0) (Float.min 1.0 (-.q /. (2.0 *. r)))) in
        let m = 2.0 *. sqrt (-.p /. 3.0) in
        buf.(0) <- m *. cos (phi /. 3.0);
        buf.(1) <- m *. cos ((phi +. (2.0 *. Float.pi)) /. 3.0);
        buf.(2) <- m *. cos ((phi +. (4.0 *. Float.pi)) /. 3.0);
        3
      end
    in
    for i = 0 to n - 1 do
      buf.(i) <- buf.(i) -. shift
    done;
    dedup3_into buf (sort3_into buf n)
  end

let real_roots_trimmed_into p buf =
  let nraw =
    match Array.length p with
    | 0 | 1 -> 0
    | 2 -> roots_linear_into p.(1) p.(0) buf
    | 3 -> roots_quadratic_into p.(2) p.(1) p.(0) buf
    | 4 -> roots_cubic_into p.(3) p.(2) p.(1) p.(0) buf
    | _ ->
        invalid_arg
          "Polynomial.real_roots_closed_form: degree exceeds 3 (use durand_kerner)"
  in
  for i = 0 to nraw - 1 do
    buf.(i) <- polish p buf.(i)
  done;
  (* the per-degree producers emit <= 3 ascending values; polishing can
     reorder them, so re-sort (duplicates kept, as [List.sort]) *)
  sort3_into buf nraw

(* Real roots for degree <= 3 of an already-normalised polynomial (no
   trailing zero coefficient).  Skips the defensive re-normalise copy
   of {!real_roots_closed_form} but is otherwise the same
   floating-point program, so the two agree bitwise on trimmed
   input — hot callers that build their coefficients trimmed use this
   directly. *)
let real_roots_trimmed p =
  let raw =
    match Array.length p with
    | 0 | 1 -> []
    | 2 -> roots_linear p.(1) p.(0)
    | 3 -> roots_quadratic p.(2) p.(1) p.(0)
    | 4 -> roots_cubic p.(3) p.(2) p.(1) p.(0)
    | _ ->
        invalid_arg
          "Polynomial.real_roots_closed_form: degree exceeds 3 (use durand_kerner)"
  in
  List.sort compare (List.map (polish p) raw)

(* Real roots for degree <= 3, closed form, ascending, Newton-polished. *)
let real_roots_closed_form p = real_roots_trimmed (normalise p)

(* ------------------------------------------------------------------ *)
(* General roots: Durand-Kerner simultaneous iteration                 *)
(* ------------------------------------------------------------------ *)

let durand_kerner ?(tol = 1e-13) ?(max_iter = 500) p =
  let p = normalise p in
  let n = Array.length p - 1 in
  if n < 1 then [||]
  else begin
    (* monic coefficients *)
    let lead = p.(n) in
    let m = Array.map (fun c -> c /. lead) p in
    let eval_c z =
      let acc = ref Complex.zero in
      for i = n downto 0 do
        acc := Complex.add (Complex.mul !acc z) { Complex.re = m.(i); im = 0.0 }
      done;
      !acc
    in
    (* initial guesses on a circle of radius ~ coefficient bound *)
    let radius =
      1.0
      +. Array.fold_left (fun acc c -> Float.max acc (Float.abs c)) 0.0
           (Array.sub m 0 n)
    in
    let roots =
      Array.init n (fun i ->
          let theta =
            (2.0 *. Float.pi *. float_of_int i /. float_of_int n) +. 0.4
          in
          { Complex.re = radius *. cos theta; im = radius *. sin theta })
    in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      incr iter;
      let max_delta = ref 0.0 in
      for i = 0 to n - 1 do
        let zi = roots.(i) in
        let denom = ref Complex.one in
        for j = 0 to n - 1 do
          if j <> i then denom := Complex.mul !denom (Complex.sub zi roots.(j))
        done;
        let delta = Complex.div (eval_c zi) !denom in
        roots.(i) <- Complex.sub zi delta;
        max_delta := Float.max !max_delta (Complex.norm delta)
      done;
      if !max_delta <= tol then converged := true
    done;
    roots
  end

(* Real roots of any polynomial: Durand-Kerner filtered to (nearly)
   real values, each polished by Newton. *)
let real_roots ?(imag_tol = 1e-8) p =
  let p = normalise p in
  if Array.length p <= 4 then real_roots_closed_form p
  else begin
    let zs = durand_kerner p in
    let candidates =
      Array.to_list zs
      |> List.filter_map (fun z ->
             if
               Float.abs z.Complex.im
               <= imag_tol *. Float.max 1.0 (Complex.norm z)
             then Some (polish p (polish p z.Complex.re))
             else None)
    in
    (* merge duplicates produced by conjugate pairs collapsing *)
    let sorted = List.sort compare candidates in
    let rec dedup = function
      | a :: b :: rest when Special.approx_equal ~atol:1e-10 ~rtol:1e-8 a b ->
          dedup (a :: rest)
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    dedup sorted
  end
