(** Dense linear algebra: vectors, matrices, LU with partial pivoting,
    Householder least squares.  Sized for circuit matrices (tens to a
    few hundreds of unknowns). *)

exception Singular of string
exception Dimension_mismatch of string

type mat

(** Plain [float array] vectors. *)
module Vec : sig
  type t = float array

  val make : int -> float -> t
  val init : int -> (int -> float) -> t
  val dim : t -> int
  val copy : t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : float -> t -> t
  val dot : t -> t -> float
  val norm2 : t -> float
  val norm_inf : t -> float

  val axpy : alpha:float -> t -> t -> unit
  (** [axpy ~alpha x y] updates [y <- y + alpha*x] in place. *)

  val pp : Format.formatter -> t -> unit
end

(** Row-major dense matrices. *)
module Mat : sig
  type t = mat

  val make : int -> int -> float -> t
  val init : int -> int -> (int -> int -> float) -> t
  val identity : int -> t
  val of_arrays : float array array -> t
  val rows : t -> int
  val cols : t -> int
  val get : t -> int -> int -> float
  val set : t -> int -> int -> float -> unit

  val add_to : t -> int -> int -> float -> unit
  (** [add_to m i j x] accumulates [x] into entry [(i, j)]; the MNA
      stamping primitive. *)

  val copy : t -> t
  val row : t -> int -> float array
  val to_arrays : t -> float array array
  val transpose : t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : float -> t -> t
  val mul : t -> t -> t
  val mul_vec : t -> Vec.t -> Vec.t
  val norm_inf : t -> float
  val pp : Format.formatter -> t -> unit
end

type lu
(** Packed LU factorisation with its row permutation. *)

val lu_decompose : mat -> lu
(** LU with partial pivoting.  Raises {!Singular} on structurally or
    numerically singular input. *)

val lu_factor_into : src:mat -> dst:mat -> int array -> unit
(** [lu_factor_into ~src ~dst perm] copies [src] into [dst] and factors
    it in place with partial pivoting, writing the row permutation into
    [perm].  Allocation-free: repeated factorisations of a refilled
    matrix (the dense MNA backend) reuse [dst] and [perm].  Raises
    {!Singular} on singular input. *)

val lu_solve_packed : mat -> int array -> Vec.t -> Vec.t
(** Solve from a packed in-place factorisation produced by
    {!lu_factor_into}. *)

val lu_solve : lu -> Vec.t -> Vec.t
(** Solve using a precomputed factorisation (reusable across multiple
    right-hand sides, e.g. Newton iterations with a frozen Jacobian). *)

val solve : mat -> Vec.t -> Vec.t
(** One-shot [A x = b] solve. *)

val det : mat -> float
(** Determinant via LU; [0.] for singular matrices. *)

val inverse : mat -> mat
(** Matrix inverse via LU; raises {!Singular} when not invertible. *)

val qr_least_squares : mat -> Vec.t -> Vec.t
(** [qr_least_squares a b] minimises [||a x - b||_2] by Householder QR
    for a full-column-rank [a] with at least as many rows as columns. *)
