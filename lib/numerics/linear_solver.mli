(** Pluggable linear-solver backends for stamp-based system assembly.

    A backend owns a square matrix with a fixed write pattern plus
    whatever factorisation scratch it needs.  Callers drive it through
    the stamp life cycle: resolve each pattern location to a stable
    {e slot} once, then per iteration [clear], accumulate values into
    slots, and [solve] — with no per-iteration matrix allocation in
    either backend.  {!Dense} stores a [Linalg] matrix and refactors it
    in place; {!Sparse_lu} stores a CSR {!Sparse.t} with a reusable
    sparse-LU workspace. *)

exception Singular of string
(** Raised by [solve] in any backend; wraps the backend's own
    singular-matrix exception. *)

type ordering =
  | Natural  (** keep the caller's unknown numbering *)
  | Amd
      (** permute by greedy minimum degree ({!Sparse.amd_order}) to
          reduce factorisation fill; sparse backend only (dense storage
          has no fill to reduce).  The permutation is computed once at
          create time, cached with the compiled pattern, and applied
          transparently: slots, residuals and solutions are all
          expressed in the caller's original numbering. *)

val ordering_name : ordering -> string
val ordering_of_string : string -> ordering option

val default_ordering : unit -> ordering
(** The ambient ordering: [CNT_ORDERING] when set to a valid name
    ("natural" | "amd", warning otherwise), else {!Natural}. *)

module type S = sig
  type t

  val name : string
  (** Short identifier used in solver statistics ("dense", "sparse"). *)

  val create : ordering -> int -> (int * int) array -> t
  (** [create ordering n pattern] allocates an [n x n] system whose
      writable locations are the (row, col) pairs of [pattern]
      (duplicates allowed). *)

  val dim : t -> int

  val nnz : t -> int
  (** Stored entries: pattern size for sparse, [n*n] for dense. *)

  val slot : t -> int -> int -> int
  (** Stable handle of a pattern location, for allocation-free refill. *)

  val clear : t -> unit
  (** Zero all values, keeping the structure. *)

  val add_slot : t -> int -> float -> unit
  (** Accumulate into a slot obtained from {!slot}. *)

  val add_to : t -> int -> int -> float -> unit
  (** Accumulate into a location by index pair. *)

  val residual : t -> float array -> float array -> float
  (** [residual m x b] is [||m x - b||_inf] at the current values. *)

  val residual_argmax : t -> float array -> float array -> int * float
  (** [residual_argmax m x b] is the row index carrying the largest
      per-row residual [|m x - b|_i] together with that residual (a row
      whose residual is NaN wins outright).  Diagnostics only — the
      common norm path is {!residual}. *)

  val solve : t -> float array -> float array
  (** Factor the current values and solve.  Raises {!Singular}. *)

  val ordering_info : t -> string * int * int
  (** [(ordering_name, fill_natural, fill_applied)]: the ordering in
      use plus the symbolic factorisation fill of the natural order and
      of the applied order (both [0] for dense, which has no fill
      bookkeeping). *)
end

module Dense : S
(** Dense backend over [Linalg]: O(n^3) in-place LU with partial
    pivoting; right for small systems where fill bookkeeping costs more
    than it saves. *)

module Sparse_lu : S
(** Sparse backend over [Sparse]: CSR storage and Gilbert-Peierls LU
    with partial pivoting and a reused workspace. *)

type backend =
  | Dense_backend
  | Sparse_backend
  | Auto  (** {!Sparse_backend} at or above {!auto_threshold} unknowns *)

val auto_threshold : int
(** Unknown count at which [Auto] switches to the sparse backend
    (25). *)

(** A backend instance packed behind first-class closures, so MNA code
    is generic over the module actually in use. *)
type instance = {
  backend_name : string;
  dim : int;
  nnz : int;
  ordering_name : string;
      (** "natural" or "amd"; dense always reports "natural" *)
  fill_natural : int;
      (** symbolic factorisation fill of the natural order (sparse) *)
  fill_applied : int;
      (** symbolic factorisation fill of the applied order (sparse);
          equals [fill_natural] when no permutation is in use *)
  slot : int -> int -> int;
  clear : unit -> unit;
  add_slot : int -> float -> unit;
  add_to : int -> int -> float -> unit;
  residual : float array -> float array -> float;
  residual_argmax : float array -> float array -> int * float;
  solve : float array -> float array;
}

val instantiate : (module S) -> ordering -> int -> (int * int) array -> instance

val make : ?ordering:ordering -> backend -> int -> (int * int) array -> instance
(** [make backend n pattern] builds the requested backend ([Auto]
    resolves on [n]).  [ordering] defaults to {!default_ordering} and
    only affects the sparse backend. *)
