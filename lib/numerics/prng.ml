(* Deterministic pseudo-random numbers (SplitMix64) for reproducible
   Monte-Carlo studies.  Not cryptographic; chosen for simplicity,
   excellent statistical quality at this scale, and bit-for-bit
   reproducibility across platforms. *)

type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () = { state = seed }

let golden = 0x9E3779B97F4A7C15L

(* One SplitMix64 step. *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform float in [0, 1): the top 53 bits of the state. *)
let uniform t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let uniform_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.uniform_range: hi < lo";
  lo +. ((hi -. lo) *. uniform t)

(* Standard normal by Box-Muller (the cached second variate is dropped
   to keep the state a single integer). *)
let gaussian ?(mean = 0.0) ?(sigma = 1.0) t =
  if sigma < 0.0 then invalid_arg "Prng.gaussian: negative sigma";
  let rec nonzero () =
    let u = uniform t in
    if u > 1e-300 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = uniform t in
  mean +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let split t =
  (* derive an independent stream deterministically *)
  create ~seed:(next_int64 t) ()

let jump t n =
  if n < 0 then invalid_arg "Prng.jump: negative count";
  (* SplitMix64's state walks an arithmetic sequence, so skipping n
     draws is a single multiply-add rather than n steps. *)
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int n) golden)

(* The SplitMix64 output finalizer, used to decorrelate derived seeds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let stream t i =
  if i < 0 then invalid_arg "Prng.stream: negative index";
  (* Pure in [t]: stream i's seed is the finalized i-th successor of the
     base state, so stream i is the same no matter how many other
     streams exist or in which order they are created. *)
  create ~seed:(mix (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden))) ()
