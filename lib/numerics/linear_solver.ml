(* Interchangeable linear-solver backends behind one stamp-oriented
   interface.  Both backends freeze their structure at [create] and are
   refilled in place, so a Newton loop allocates no matrices after
   compilation; only solution vectors are fresh per solve. *)

exception Singular of string

module type S = sig
  type t

  val name : string
  val create : int -> (int * int) array -> t
  val dim : t -> int
  val nnz : t -> int
  val slot : t -> int -> int -> int
  val clear : t -> unit
  val add_slot : t -> int -> float -> unit
  val add_to : t -> int -> int -> float -> unit
  val residual : t -> float array -> float array -> float
  val residual_argmax : t -> float array -> float array -> int * float
  val solve : t -> float array -> float array
end

module Dense : S = struct
  type t = {
    n : int;
    a : Linalg.mat; (* stamped values *)
    scratch : Linalg.mat; (* in-place factorisation target *)
    perm : int array;
  }

  let name = "dense"

  let create n pattern =
    ignore pattern;
    (* dense storage admits every location *)
    {
      n;
      a = Linalg.Mat.make n n 0.0;
      scratch = Linalg.Mat.make n n 0.0;
      perm = Array.make n 0;
    }

  let dim t = t.n
  let nnz t = t.n * t.n

  let slot t i j =
    if i < 0 || j < 0 || i >= t.n || j >= t.n then
      invalid_arg (Printf.sprintf "Dense.slot: (%d, %d) out of range" i j);
    (i * t.n) + j

  let clear t =
    for i = 0 to t.n - 1 do
      for j = 0 to t.n - 1 do
        Linalg.Mat.set t.a i j 0.0
      done
    done

  let add_slot t s v = Linalg.Mat.add_to t.a (s / t.n) (s mod t.n) v
  let add_to t i j v = Linalg.Mat.add_to t.a i j v

  let residual t x b =
    let worst = ref 0.0 in
    for i = 0 to t.n - 1 do
      let acc = ref (-.b.(i)) in
      for j = 0 to t.n - 1 do
        acc := !acc +. (Linalg.Mat.get t.a i j *. x.(j))
      done;
      worst := Float.max !worst (Float.abs !acc)
    done;
    !worst

  let residual_argmax t x b =
    let worst = ref 0.0 and row = ref 0 in
    for i = 0 to t.n - 1 do
      let acc = ref (-.b.(i)) in
      for j = 0 to t.n - 1 do
        acc := !acc +. (Linalg.Mat.get t.a i j *. x.(j))
      done;
      let r = Float.abs !acc in
      (* the first NaN row wins and stays: plain [>] is false for NaN *)
      if (not (Float.is_nan !worst)) && (r > !worst || Float.is_nan r)
      then begin
        worst := r;
        row := i
      end
    done;
    (!row, !worst)

  let solve t b =
    try
      Linalg.lu_factor_into ~src:t.a ~dst:t.scratch t.perm;
      Linalg.lu_solve_packed t.scratch t.perm b
    with Linalg.Singular msg -> raise (Singular msg)
end

module Sparse_lu : S = struct
  type t = {
    m : Sparse.t;
    lu : Sparse.lu;
  }

  let name = "sparse"

  let create n pattern =
    let b = Sparse.Builder.create n in
    Array.iter (fun (i, j) -> Sparse.Builder.add b i j) pattern;
    let m = Sparse.Builder.finalize b in
    { m; lu = Sparse.lu_create m }

  let dim t = Sparse.dim t.m
  let nnz t = Sparse.nnz t.m
  let slot t i j = Sparse.slot t.m i j
  let clear t = Sparse.clear t.m
  let add_slot t s v = Sparse.add_slot t.m s v
  let add_to t i j v = Sparse.add_to t.m i j v
  let residual t x b = Sparse.residual_inf t.m x b

  let residual_argmax t x b =
    let ax = Sparse.mul_vec t.m x in
    let worst = ref 0.0 and row = ref 0 in
    Array.iteri
      (fun i v ->
        let r = Float.abs (v -. b.(i)) in
        if (not (Float.is_nan !worst)) && (r > !worst || Float.is_nan r)
        then begin
          worst := r;
          row := i
        end)
      ax;
    (!row, !worst)

  let solve t b =
    try
      Sparse.refactor t.lu t.m;
      Sparse.lu_solve t.lu b
    with Sparse.Singular msg -> raise (Singular msg)
end

type backend =
  | Dense_backend
  | Sparse_backend
  | Auto

let auto_threshold = 25

type instance = {
  backend_name : string;
  dim : int;
  nnz : int;
  slot : int -> int -> int;
  clear : unit -> unit;
  add_slot : int -> float -> unit;
  add_to : int -> int -> float -> unit;
  residual : float array -> float array -> float;
  residual_argmax : float array -> float array -> int * float;
  solve : float array -> float array;
}

let instantiate (module B : S) n pattern =
  let t = B.create n pattern in
  {
    backend_name = B.name;
    dim = B.dim t;
    nnz = B.nnz t;
    slot = B.slot t;
    clear = (fun () -> B.clear t);
    add_slot = B.add_slot t;
    add_to = B.add_to t;
    residual = B.residual t;
    residual_argmax = B.residual_argmax t;
    solve = B.solve t;
  }

let make backend n pattern =
  let m : (module S) =
    match backend with
    | Dense_backend -> (module Dense)
    | Sparse_backend -> (module Sparse_lu)
    | Auto -> if n >= auto_threshold then (module Sparse_lu) else (module Dense)
  in
  instantiate m n pattern
