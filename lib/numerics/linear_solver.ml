(* Interchangeable linear-solver backends behind one stamp-oriented
   interface.  Both backends freeze their structure at [create] and are
   refilled in place, so a Newton loop allocates no matrices after
   compilation; only solution vectors are fresh per solve.

   The sparse backend optionally applies a fill-reducing symmetric
   permutation (greedy minimum degree, [Sparse.amd_order]) at create
   time: the pattern is permuted once, slot handles resolve through the
   cached permutation, and solves gather/scatter the right-hand side
   and solution through it — so stamp-program callers are oblivious to
   the ordering in use. *)

exception Singular of string

type ordering =
  | Natural
  | Amd

let ordering_name = function Natural -> "natural" | Amd -> "amd"

let ordering_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "natural" -> Some Natural
  | "amd" -> Some Amd
  | _ -> None

let default_ordering_lazy =
  lazy
    (match Sys.getenv_opt "CNT_ORDERING" with
    | None | Some "" -> Natural
    | Some s -> (
        match ordering_of_string s with
        | Some o -> o
        | None ->
            Printf.eprintf
              "warning: CNT_ORDERING: unknown ordering %S (expected natural | \
               amd); using natural\n\
               %!"
              s;
            Natural))

let default_ordering () = Lazy.force default_ordering_lazy

module type S = sig
  type t

  val name : string
  val create : ordering -> int -> (int * int) array -> t
  val dim : t -> int
  val nnz : t -> int
  val slot : t -> int -> int -> int
  val clear : t -> unit
  val add_slot : t -> int -> float -> unit
  val add_to : t -> int -> int -> float -> unit
  val residual : t -> float array -> float array -> float
  val residual_argmax : t -> float array -> float array -> int * float
  val solve : t -> float array -> float array
  val ordering_info : t -> string * int * int
end

module Dense : S = struct
  type t = {
    n : int;
    a : Linalg.mat; (* stamped values *)
    scratch : Linalg.mat; (* in-place factorisation target *)
    perm : int array;
  }

  let name = "dense"

  let create _ordering n pattern =
    ignore pattern;
    (* dense storage admits every location; fill ordering is moot *)
    {
      n;
      a = Linalg.Mat.make n n 0.0;
      scratch = Linalg.Mat.make n n 0.0;
      perm = Array.make n 0;
    }

  let dim t = t.n
  let nnz t = t.n * t.n

  let slot t i j =
    if i < 0 || j < 0 || i >= t.n || j >= t.n then
      invalid_arg (Printf.sprintf "Dense.slot: (%d, %d) out of range" i j);
    (i * t.n) + j

  let clear t =
    for i = 0 to t.n - 1 do
      for j = 0 to t.n - 1 do
        Linalg.Mat.set t.a i j 0.0
      done
    done

  let add_slot t s v = Linalg.Mat.add_to t.a (s / t.n) (s mod t.n) v
  let add_to t i j v = Linalg.Mat.add_to t.a i j v

  let residual t x b =
    let worst = ref 0.0 in
    for i = 0 to t.n - 1 do
      let acc = ref (-.b.(i)) in
      for j = 0 to t.n - 1 do
        acc := !acc +. (Linalg.Mat.get t.a i j *. x.(j))
      done;
      worst := Float.max !worst (Float.abs !acc)
    done;
    !worst

  let residual_argmax t x b =
    let worst = ref 0.0 and row = ref 0 in
    for i = 0 to t.n - 1 do
      let acc = ref (-.b.(i)) in
      for j = 0 to t.n - 1 do
        acc := !acc +. (Linalg.Mat.get t.a i j *. x.(j))
      done;
      let r = Float.abs !acc in
      (* the first NaN row wins and stays: plain [>] is false for NaN *)
      if (not (Float.is_nan !worst)) && (r > !worst || Float.is_nan r)
      then begin
        worst := r;
        row := i
      end
    done;
    (!row, !worst)

  let solve t b =
    try
      Linalg.lu_factor_into ~src:t.a ~dst:t.scratch t.perm;
      Linalg.lu_solve_packed t.scratch t.perm b
    with Linalg.Singular msg -> raise (Singular msg)

  let ordering_info _t = ("natural", 0, 0)
end

module Sparse_lu : S = struct
  type t = {
    m : Sparse.t; (* pattern permuted when an ordering is applied *)
    lu : Sparse.lu;
    n : int;
    perm : int array; (* position -> original unknown; [||] = identity *)
    pinv : int array; (* original unknown -> position; [||] = identity *)
    xp : float array; (* permuted-vector scratch *)
    bp : float array;
    fill_natural : int; (* symbolic fill of the natural order *)
    fill_applied : int; (* symbolic fill of the order in use *)
  }

  let name = "sparse"

  let create ordering n pattern =
    let fill_natural = Sparse.natural_fill ~n pattern in
    match ordering with
    | Natural ->
        let b = Sparse.Builder.create n in
        Array.iter (fun (i, j) -> Sparse.Builder.add b i j) pattern;
        let m = Sparse.Builder.finalize b in
        {
          m;
          lu = Sparse.lu_create m;
          n;
          perm = [||];
          pinv = [||];
          xp = [||];
          bp = [||];
          fill_natural;
          fill_applied = fill_natural;
        }
    | Amd ->
        let perm, fill_applied = Sparse.amd_order ~n pattern in
        let pinv = Array.make n 0 in
        Array.iteri (fun k v -> pinv.(v) <- k) perm;
        let b = Sparse.Builder.create n in
        Array.iter (fun (i, j) -> Sparse.Builder.add b pinv.(i) pinv.(j)) pattern;
        let m = Sparse.Builder.finalize b in
        {
          m;
          lu = Sparse.lu_create m;
          n;
          perm;
          pinv;
          xp = Array.make n 0.0;
          bp = Array.make n 0.0;
          fill_natural;
          fill_applied;
        }

  let identity t = Array.length t.perm = 0

  let dim t = Sparse.dim t.m
  let nnz t = Sparse.nnz t.m

  let slot t i j =
    if identity t then Sparse.slot t.m i j
    else Sparse.slot t.m t.pinv.(i) t.pinv.(j)

  let clear t = Sparse.clear t.m
  let add_slot t s v = Sparse.add_slot t.m s v

  let add_to t i j v =
    if identity t then Sparse.add_to t.m i j v
    else Sparse.add_to t.m t.pinv.(i) t.pinv.(j) v

  (* The permuted system's residual rows are a permutation of the
     original's, so the inf-norm is the same quantity (summation order
     within a row follows the permuted columns). *)
  let residual t x b =
    if identity t then Sparse.residual_inf t.m x b
    else begin
      for k = 0 to t.n - 1 do
        t.xp.(k) <- x.(t.perm.(k));
        t.bp.(k) <- b.(t.perm.(k))
      done;
      Sparse.residual_inf t.m t.xp t.bp
    end

  let residual_argmax t x b =
    let xv =
      if identity t then x
      else begin
        for k = 0 to t.n - 1 do
          t.xp.(k) <- x.(t.perm.(k));
          t.bp.(k) <- b.(t.perm.(k))
        done;
        t.xp
      end
    in
    let bv = if identity t then b else t.bp in
    let ax = Sparse.mul_vec t.m xv in
    let worst = ref 0.0 and row = ref 0 in
    Array.iteri
      (fun i v ->
        let r = Float.abs (v -. bv.(i)) in
        if (not (Float.is_nan !worst)) && (r > !worst || Float.is_nan r)
        then begin
          worst := r;
          row := i
        end)
      ax;
    let orig_row = if identity t then !row else t.perm.(!row) in
    (orig_row, !worst)

  let solve t b =
    try
      if identity t then begin
        Sparse.refactor t.lu t.m;
        Sparse.lu_solve t.lu b
      end
      else begin
        for k = 0 to t.n - 1 do
          t.bp.(k) <- b.(t.perm.(k))
        done;
        Sparse.refactor ~orig_col:(fun k -> t.perm.(k)) t.lu t.m;
        let xp = Sparse.lu_solve t.lu t.bp in
        Array.init t.n (fun i -> xp.(t.pinv.(i)))
      end
    with Sparse.Singular msg -> raise (Singular msg)

  let ordering_info t =
    ((if identity t then "natural" else "amd"), t.fill_natural, t.fill_applied)
end

type backend =
  | Dense_backend
  | Sparse_backend
  | Auto

let auto_threshold = 25

type instance = {
  backend_name : string;
  dim : int;
  nnz : int;
  ordering_name : string; (* "natural" | "amd" (dense: "natural") *)
  fill_natural : int; (* symbolic fill of the natural order (sparse) *)
  fill_applied : int; (* symbolic fill of the order in use (sparse) *)
  slot : int -> int -> int;
  clear : unit -> unit;
  add_slot : int -> float -> unit;
  add_to : int -> int -> float -> unit;
  residual : float array -> float array -> float;
  residual_argmax : float array -> float array -> int * float;
  solve : float array -> float array;
}

let instantiate (module B : S) ordering n pattern =
  let t = B.create ordering n pattern in
  let oname, fill_natural, fill_applied = B.ordering_info t in
  {
    backend_name = B.name;
    dim = B.dim t;
    nnz = B.nnz t;
    ordering_name = oname;
    fill_natural;
    fill_applied;
    slot = B.slot t;
    clear = (fun () -> B.clear t);
    add_slot = B.add_slot t;
    add_to = B.add_to t;
    residual = B.residual t;
    residual_argmax = B.residual_argmax t;
    solve = B.solve t;
  }

let make ?ordering backend n pattern =
  let ordering =
    match ordering with Some o -> o | None -> default_ordering ()
  in
  let m : (module S) =
    match backend with
    | Dense_backend -> (module Dense)
    | Sparse_backend -> (module Sparse_lu)
    | Auto -> if n >= auto_threshold then (module Sparse_lu) else (module Dense)
  in
  instantiate m ordering n pattern
