(** Circuit-ready ballistic CNFET compact model — the paper's
    contribution.  Construction fits the piecewise charge curve once;
    every subsequent bias-point evaluation uses only closed-form
    algebra (no integration, no iteration). *)

open Cnt_physics

type polarity =
  | N_type
  | P_type  (** electron-hole mirror of the n-type device *)

type t

val make :
  ?polarity:polarity ->
  ?spec:Charge_fit.spec ->
  ?optimise:bool ->
  ?theory:Charge_fit.theory_curve ->
  Device.t ->
  t
(** Fit a model to a device.  Default spec is the paper's Model 2;
    [~optimise:true] additionally refines the boundary offsets for the
    device's own operating condition (the paper's numerical boundary
    placement; adds a few hundred ms of one-off fitting work).  Pass a
    precomputed [theory] curve to skip resampling the charge
    integrals. *)

val of_parts :
  ?polarity:polarity ->
  ?charge_rms:float ->
  device:Device.t ->
  approx:Piecewise.t ->
  unit ->
  t
(** Rebuild a model from a previously fitted charge approximation
    without refitting (the {!Model_io} deserialisation path). *)

val model1 : ?polarity:polarity -> ?optimise:bool -> ?device:Device.t -> unit -> t
(** The paper's Model 1 (linear/quadratic/zero pieces). *)

val model2 : ?polarity:polarity -> ?optimise:bool -> ?device:Device.t -> unit -> t
(** The paper's Model 2 (linear/quadratic/cubic/zero pieces). *)

val device : t -> Device.t
val polarity : t -> polarity
val spec : t -> Charge_fit.spec

val identity : t -> string
(** Canonical identity string: polarity, full device parameter set and
    the fitted boundary offsets/degrees, floats in hex.  Two models
    with the same identity are interchangeable; anything keyed on a
    model (eval caches, manifests, server deck caches) must use it. *)

val charge_approx : t -> Piecewise.t
(** The fitted [Q_S(V_SC)] curve. *)

val charge_rms : t -> float
(** Relative RMS error of the charge fit over its window. *)

val solver : t -> Scv_solver.t

(** {1 Bias-point evaluation cache}

    Every model owns an {!Eval_cache.store} memoising its
    [(V_SC, I_DS)] solves against the oriented bias tuple.  Models are
    born with {!Eval_cache.default_config} (disabled unless [--cache] /
    [CNT_CACHE] / {!Eval_cache.set_default} says otherwise).  With
    [quantum = 0] cached and uncached evaluation are bitwise-identical;
    see [docs/CACHING.md]. *)

val set_cache : t -> Eval_cache.config -> unit
(** Replace the model's cache with a fresh store of the given
    configuration (drops any cached entries and statistics). *)

val cache_config : t -> Eval_cache.config
val cache_stats : t -> Eval_cache.stats

val solve_vsc : t -> vgs:float -> vds:float -> float
(** Self-consistent voltage at a bias point, in closed form. *)

val solve_stats : t -> vgs:float -> vds:float -> Scv_solver.stats

val ids : t -> vgs:float -> vds:float -> float
(** Drain current (A) at a bias point (paper eq. 14).  Negative for
    p-type devices under positive bias. *)

val charges : t -> vgs:float -> vds:float -> float * float * float
(** [(v_sc, q_s, q_d)] at a bias point; charges in C/m. *)

(** {1 Batched kernels}

    [eval_batch] evaluates a whole bias grid in one pass over a
    [Bigarray] result, hoisting the per-drain-bias solver plan
    ({!Scv_solver.plan}) out of the inner loop.  Every element is
    {e bitwise-equal} to the corresponding scalar {!ids} call under the
    same cache configuration (pinned by [test/test_property.ml]), and
    the cache composes: batch evaluations populate and hit the same
    per-slot store as scalar ones. *)

type grid = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

val eval_batch : t -> vgs:float array -> vds:float array -> grid
(** Drain currents for the bias product grid; element [(i, j)] is
    [ids t ~vgs:vgs.(i) ~vds:vds.(j)], bitwise. *)

val output_family :
  t -> vgs_list:float list -> vds_points:float array -> (float * float array) list
(** Output characteristics, evaluated through {!eval_batch}. *)

val transfer : t -> vds:float -> vgs_points:float array -> float array
(** Transfer characteristic, evaluated through {!eval_batch}. *)

val gm : ?dv:float -> t -> vgs:float -> vds:float -> float
(** Transconductance [dI/dV_GS] by central difference. *)

val gds : ?dv:float -> t -> vgs:float -> vds:float -> float
(** Output conductance [dI/dV_DS] by central difference. *)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type stencil_ws
(** Reusable workspace for {!eval_stencil}: the three solver plans one
    stencil evaluation retargets each call.  A workspace belongs to the
    model that created it and must not be shared between domains
    evaluating concurrently (keep one per device per cloned system). *)

val stencil_ws : t -> stencil_ws

val eval_stencil :
  ?dv:float ->
  ?ws:stencil_ws ->
  t ->
  fault_i0:bool ->
  vgs:float ->
  vds:float ->
  i0:vec ->
  gm:vec ->
  gds:vec ->
  k:int ->
  unit
(** The MNA assembly stencil as one batched kernel: writes slot [k] of
    the three output columns with [ids t ~vgs ~vds] and the
    central-difference [gm]/[gds] at step [dv], hoisting the three
    per-drain-bias solver plans and the device capacitances out of the
    five point evaluations.  With [ws] the plans reuse the workspace's
    storage ({!Scv_solver.replan}) instead of allocating.  Each value
    is {e bitwise-equal} to the scalar calls under any cache
    configuration, and cache entries are shared key-for-key with the
    scalar path (pinned by [test/test_assembly.ml]).  [fault_i0]
    reproduces the scalar assembly's [Fault.Nan_eval] behaviour: the
    bias-point current is NaN and that point is not evaluated, while
    the derivative points still are. *)

val pp : Format.formatter -> t -> unit
