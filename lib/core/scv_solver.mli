(** Closed-form solver of the self-consistent voltage equation for
    piecewise-polynomial charge approximations (paper sections IV-V).

    Replaces the Newton-Raphson + numerical-integration inner loop of
    the reference model with breakpoint scanning plus closed-form
    polynomial roots of degree at most 3. *)

type t

type stats = {
  vsc : float;  (** the solved self-consistent voltage, V *)
  interval : float * float;  (** bracketing breakpoint interval *)
  degree : int;  (** degree of the polynomial solved on it *)
  used_fallback : bool;  (** whether bisection rescued a degenerate case *)
}

val create : qs:Piecewise.t -> c_sigma:float -> t
(** Build a solver from the fitted source charge curve [Q_S(V_SC)]
    (C/m) and the total terminal capacitance (F/m). *)

val qs : t -> Piecewise.t
val c_sigma : t -> float

val merged_breakpoints : t -> vds:float -> float array
(** Sorted union of the source breakpoints and the drain breakpoints
    (source breakpoints shifted by [-vds]). *)

val residual : t -> qt:float -> vds:float -> float -> float
(** [F(V) = C_Sigma V + Q_t - Q_S(V) - Q_D(V)]; strictly increasing in
    [V]. *)

val residual_poly : t -> qt:float -> vds:float -> float -> Cnt_numerics.Polynomial.t
(** The polynomial equal to [F] on the breakpoint interval containing
    the given point. *)

val solve_stats : t -> qt:float -> vds:float -> stats
(** Solve [F(V) = 0] in closed form, with diagnostics. *)

val solve : t -> qt:float -> vds:float -> float
(** The self-consistent voltage for terminal charge [qt] (C/m) and
    drain bias [vds] (V). *)

(** {1 Batched evaluation plans}

    A plan hoists everything in the closed-form solve that depends only
    on [(solver, vds)] — the merged breakpoints, the charge-curve
    values at them and every interval's piece polynomials — so a whole
    bias grid at one drain voltage pays for that work once.
    [solve_plan] replays the scalar solve's floating-point program on
    the precomputed parts and is therefore {e bitwise-equal} to
    {!solve} at every [(qt, vds)] (pinned by [test/test_property.ml]).
    It ticks the same telemetry counters as the scalar path, so
    profiles keep their shape whichever entry point a workload uses. *)

type plan

val plan : t -> vds:float -> plan
val plan_vds : plan -> float

val replan : plan -> vds:float -> unit
(** Retarget a plan at a new drain bias, reusing its storage: after
    [replan p ~vds], [p] is indistinguishable from [plan t ~vds] (the
    worst-case merged-breakpoint capacity is allocated up front).
    Assembly loops keep one plan per device and replan it each
    iteration, keeping plan construction off the allocator. *)

val solve_plan : plan -> qt:float -> float
(** [solve_plan (plan t ~vds) ~qt] = [solve t ~qt ~vds], bitwise. *)

val fallback_events : unit -> int
(** Process-wide count of bisection rescues since program start,
    monotonic and always on (independent of [Cnt_obs] being enabled).
    Circuit-level convergence diagnostics snapshot it around a solve
    attempt to report degenerate device evaluations in their strategy
    trail.  Under parallel analyses the delta around one attempt may
    include rescues from concurrent attempts on other domains. *)
