(** Memoised bias-point evaluation for circuit-ready CNFET models.

    The closed-form piecewise solve already makes one bias-point
    evaluation cheap; this layer makes the {e repeated} evaluations
    that dominate circuit workloads (DC-sweep warm starts re-evaluating
    the previous solution, [gm]/[gds] stencils revisiting the centre
    point, characterisation corners sharing grids) nearly free by
    caching [(V_SC, I_DS)] per device against the bias tuple.

    A store is {e per-model} — temperature and Fermi level are fixed by
    the owning device, so the key is the oriented [(V_GS, V_DS)] pair.
    Keys are the raw float bit patterns by default ([quantum = 0]):
    a hit returns exactly the value a scalar evaluation would have
    produced, so results are bitwise-identical with the cache on or
    off.  A positive [quantum] snaps both voltages to the grid
    [round (v / quantum) * quantum] {e before} solving, trading
    exactness for a higher hit rate; results then depend only on the
    quantised bias, never on cache state or evaluation order, so they
    remain deterministic at any job count.  See [docs/CACHING.md].

    Each store shards into per-slot caches indexed by
    [Cnt_obs.Obs.current_slot] — the same slots [Cnt_par.Pool] binds
    its worker domains to — so pool tasks never share a cache line and
    no locking exists on the hit path. *)

type config = {
  size : int;  (** entries per slot cache; [<= 0] disables caching *)
  quantum : float;  (** key quantisation step in volts; [0] = exact keys *)
}

val disabled : config
(** [{ size = 0; quantum = 0.0 }]. *)

val config_of_string : string -> (config, string) result
(** Parse ["size"] or ["size:quantum"] — the spelling of the
    [--cache] flag and the [CNT_CACHE] environment variable.  Size must
    be a non-negative integer, quantum a non-negative float. *)

val config_to_string : config -> string

val default_config : unit -> config
(** The ambient configuration new models adopt: the last
    {!set_default}, else [CNT_CACHE] when set (raises
    [Invalid_argument] on a malformed value), else {!disabled}. *)

val set_default : config -> unit

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** misses that displaced a live entry *)
}

type store

val create : ?identity:string -> config -> store
(** A fresh store.  Capacity is rounded up to a power of two.
    [identity] — the owning device model's identity string — is folded
    into the line-index hash as a stable salt so stores of distinct
    models never share line geometry.  It cannot change values: with
    [quantum = 0] a hit replays an exact-key solve, and with
    [quantum > 0] values are pure functions of the snapped bias. *)

val config : store -> config
val enabled : store -> bool

val quantise : store -> float -> float
(** The key quantisation the store applies, exposed so batched kernels
    can pre-snap a whole grid; identity when disabled or exact-keyed.
    Idempotent. *)

val find_or_add :
  store ->
  vgs:float ->
  vds:float ->
  (vgs:float -> vds:float -> float * float) ->
  float * float
(** [(v_sc, i_ds)] for the (quantised) bias, from the calling slot's
    cache when present, else from [compute] (invoked with the quantised
    bias) and stored.  When the store is disabled this is exactly
    [compute ~vgs ~vds]. *)

val stats : store -> stats
(** Aggregate hit/miss/eviction counts across every slot cache.  Read
    it outside parallel regions.  The same counts also feed the
    process-wide [eval_cache.hits]/[misses]/[evictions] [Cnt_obs]
    counters shown by [--profile]. *)

val clear : store -> unit
(** Drop every entry and zero the statistics.  Must not run while pool
    workers are evaluating through the store. *)
