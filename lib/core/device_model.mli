(** Pluggable device-model tier: the capability record every CNFET
    backend exposes to the circuit layer, plus the registry that names
    backends for deck cards ([model=...]), run overrides
    ([--model] / [CNT_MODEL]) and per-request server config.

    The MNA compiler, the batched gather/eval/scatter assembly, the
    eval-cache plumbing and the manifest/export layers consume only
    this interface; concrete physics ({!Cnt_model}, {!Vs_model}) plugs
    in through {!register}.  Two backends ship in-tree: ["piecewise"]
    (the paper's Model 1/Model 2, the reference backend — bitwise
    identical through this interface to the direct calls it replaced)
    and ["vs"] (the virtual-source ballistic model of Lee et al.).
    See [docs/MODELS.md] for the contract and a walkthrough of adding a
    backend. *)

open Cnt_physics

type polarity = Cnt_model.polarity =
  | N_type
  | P_type

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type stencil =
  fault_i0:bool ->
  vgs:float ->
  vds:float ->
  i0:vec ->
  gm:vec ->
  gds:vec ->
  k:int ->
  unit
(** One workspace-backed MNA stencil evaluation: writes slot [k] of the
    three output columns with the bias-point current and the
    central-difference [gm]/[gds].  Must be {e bitwise-equal} to the
    corresponding scalar {!ids}/{!gm}/{!gds} calls under any cache
    configuration.  [fault_i0] makes the bias-point current NaN without
    evaluating the model there (the scalar assembly's [Fault.Nan_eval]
    site); the derivative points still evaluate.  A stencil closure
    owns its scratch state: keep one per device per cloned system,
    never share across concurrently solving domains. *)

type t
(** A circuit-ready device model. *)

val backend : t -> string
(** Registry name of the backend this model came from. *)

val identity : t -> string
(** Canonical identity string (starts with a backend tag, floats in
    hex).  Everything keyed on a model — eval caches, manifests, the
    server deck caches — must use it; equal identity means
    interchangeable models. *)

val polarity : t -> polarity
val device : t -> Device.t

val card : t -> (string * string) list
(** The canonical resolved card attributes (including ["model"]), in
    plain float syntax.  {!remodel} re-parses these under another
    backend; backends ignore keys they don't know. *)

val ids : t -> vgs:float -> vds:float -> float
(** Drain current, A.  Negative for p-type devices under positive
    bias. *)

val gm : t -> vgs:float -> vds:float -> float
val gds : t -> vgs:float -> vds:float -> float

val charges : t -> vgs:float -> vds:float -> float * float * float
(** [(v_sc, q_s, q_d)]: backend-defined bias-point charge summary
    (piecewise: self-consistent voltage and mobile charges in C/m). *)

val stencil : t -> stencil
(** A fresh stencil closure with its own workspace. *)

val intrinsic_caps : t -> length:float -> (float * float) option
(** Meyer-style [(c_gs, c_gd)] intrinsic terminal capacitances for a
    tube of [length] metres; [None] when [length <= 0]. *)

val set_cache : t -> Eval_cache.config -> unit
(** Replace the model's eval cache (fresh store, salted with the
    model's identity). *)

val cache_config : t -> Eval_cache.config
val cache_stats : t -> Eval_cache.stats

val as_piecewise : t -> Cnt_model.t option
(** The underlying piecewise model, for piecewise-only consumers
    (model export, RMS oracles).  [None] for other backends. *)

val pp : t -> Format.formatter -> unit

(** {1 Registry} *)

type backend_info = {
  name : string;  (** registry name, used in [model=] / [--model] *)
  doc : string;
  params : (string * string) list;  (** card attribute schema: key, doc *)
}

val register :
  backend_info ->
  (polarity:polarity ->
  number:(string -> float) ->
  (string * string) list ->
  (t, string) result) ->
  unit
(** Register a backend.  The builder receives the card's key=value
    attributes and a SPICE number parser (which may raise on malformed
    input); it must resolve defaults, memoise equal cards to the
    physically same [t] (see {!of_card}), and return [Error] for
    invalid parameters.  Raises [Invalid_argument] on a duplicate
    name. *)

val backends : unit -> backend_info list
(** Registered backends, in registration order. *)

val find : string -> backend_info option
val backend_names : unit -> string
(** Comma-separated registered names, for error messages. *)

val of_card :
  ?backend:string ->
  polarity:polarity ->
  number:(string -> float) ->
  (string * string) list ->
  (t, string) result
(** Build (or fetch the memoised) model for a device card.  The
    backend is [?backend] when given, else the card's [model=]
    attribute (["1"]/["2"] select the piecewise backend for deck
    compatibility), else ["piecewise"].  Construction is memoised on
    the canonical card, so equal cards share one physical model. *)

val remodel : t -> backend:string -> (t, string) result
(** The same device card rebuilt under another backend (identity when
    the backend already matches).  Backend-specific attributes the
    target doesn't know are ignored. *)

val of_piecewise : ?card:(string * string) list -> Cnt_model.t -> t
(** Wrap a concrete piecewise model (programmatic construction,
    {!Model_io} files).  Every evaluation delegates 1:1, so behaviour
    is bitwise-identical to calling {!Cnt_model} directly.  Without
    [card], a card is synthesised from the device geometry — enough to
    {!remodel} onto another backend, but remodelling {e back} to
    piecewise then yields a stock Model-2 fit, not the original
    spec. *)

val of_vs : ?card:(string * string) list -> Vs_model.t -> t
(** Wrap a concrete virtual-source model. *)

(** {1 Run-level override}

    The [--model]/[CNT_MODEL] override forces every CNFET of a deck
    onto one backend before analysis.  An empty [CNT_MODEL] counts as
    unset so test harnesses can neutralise the variable. *)

val default_override : unit -> string option
(** The ambient backend override: the last {!set_default_override} if
    any, else [CNT_MODEL] (read once). *)

val set_default_override : string option -> unit
