(* Per-device memoisation of closed-form bias-point solves.

   Layout: one direct-mapped cache per Obs slot (slot 0 = main domain,
   slot k+1 = pool worker k), created lazily the first time a domain
   evaluates through the store.  A slot cache is four parallel float
   arrays (key_vgs, key_vds, vsc, ids) plus an occupancy byte per line;
   the line index is a 64-bit mix of the two key bit patterns.  Only
   the domain bound to a slot ever touches its cache, so the hit path
   is lock-free; pool region boundaries provide the happens-before
   edges between successive owners of a slot.

   Determinism: with quantum = 0 a hit replays a value computed for the
   exact same key, so cached and uncached runs are bitwise-identical.
   With quantum > 0 the bias is snapped to the quantisation grid before
   solving, so the result is a pure function of the quantised bias —
   still independent of cache state, eviction order and job count. *)

module Obs = Cnt_obs.Obs

let c_hits = Obs.counter "eval_cache.hits"
let c_misses = Obs.counter "eval_cache.misses"
let c_evictions = Obs.counter "eval_cache.evictions"

type config = {
  size : int;
  quantum : float;
}

let disabled = { size = 0; quantum = 0.0 }

let config_to_string c =
  if c.size <= 0 then "0"
  else if c.quantum = 0.0 then string_of_int c.size
  else Printf.sprintf "%d:%g" c.size c.quantum

let config_of_string s =
  let invalid () =
    Error
      (Printf.sprintf
         "invalid cache spec %S (expected SIZE or SIZE:QUANTUM, e.g. 4096 or \
          4096:1e-4)"
         s)
  in
  let parse_size s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> Some n
    | _ -> None
  in
  match String.index_opt s ':' with
  | None -> (
      match parse_size s with
      | Some size -> Ok { size; quantum = 0.0 }
      | None -> invalid ())
  | Some i -> (
      let qs = String.sub s (i + 1) (String.length s - i - 1) in
      match (parse_size (String.sub s 0 i), float_of_string_opt (String.trim qs)) with
      | Some size, Some q when q >= 0.0 && Float.is_finite q ->
          Ok { size; quantum = q }
      | _ -> invalid ())

(* Ambient default for newly created models: programmatic override
   first, then the CNT_CACHE variable, then disabled. *)
let default_override = ref None

let env_config =
  lazy
    (match Sys.getenv_opt "CNT_CACHE" with
    | None | Some "" -> disabled
    | Some s -> (
        match config_of_string s with
        | Ok c -> c
        | Error msg -> invalid_arg ("CNT_CACHE: " ^ msg)))

let default_config () =
  match !default_override with
  | Some c -> c
  | None -> Lazy.force env_config

let set_default c = default_override := Some c

type stats = {
  hits : int;
  misses : int;
  evictions : int;
}

(* FNV-1a over the owner's identity string: a stable per-model salt
   folded into the line hash so two stores belonging to different
   device models never agree on line geometry, even if their key bit
   patterns collide.  With quantum = 0 values are exact-key replays and
   with quantum > 0 they are pure functions of the snapped bias, so the
   salt can only change eviction patterns, never results. *)
let identity_seed = function
  | None -> 0
  | Some s ->
      let h = ref 0x4BF29CE484222325 (* FNV offset basis, top bit dropped *) in
      String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001B3) s;
      !h

(* One slot's direct-mapped cache.  [occupied] is a byte per line so a
   fresh cache needs no key sentinel. *)
type slot_cache = {
  mask : int;
  line_seed : int;
  occupied : Bytes.t;
  key_vgs : float array;
  key_vds : float array;
  val_vsc : float array;
  val_ids : float array;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
}

(* Slots beyond this index bypass the cache; Cnt_par pools this wide
   are far past the useful domain count on any current host. *)
let max_slots = 64

type store = {
  cfg : config;
  seed : int;
  slots : slot_cache option array;
}

let create ?identity cfg =
  { cfg; seed = identity_seed identity; slots = Array.make max_slots None }
let config t = t.cfg
let enabled t = t.cfg.size > 0

let quantise t v =
  let q = t.cfg.quantum in
  if t.cfg.size <= 0 || q <= 0.0 then v else Float.round (v /. q) *. q

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let fresh_slot_cache cfg seed =
  let cap = round_pow2 (max 1 cfg.size) in
  {
    mask = cap - 1;
    line_seed = seed;
    occupied = Bytes.make cap '\000';
    key_vgs = Array.make cap 0.0;
    key_vds = Array.make cap 0.0;
    val_vsc = Array.make cap 0.0;
    val_ids = Array.make cap 0.0;
    s_hits = 0;
    s_misses = 0;
    s_evictions = 0;
  }

let slot_cache t ix =
  match t.slots.(ix) with
  | Some c -> c
  | None ->
      let c = fresh_slot_cache t.cfg t.seed in
      t.slots.(ix) <- Some c;
      c

(* SplitMix64-style finaliser over native ints: the lookup is the
   per-evaluation overhead the cache adds on a miss, and boxed Int64
   arithmetic would allocate on every call.  [Int64.to_int] drops the
   key's top bit, which only matters for hashing, not for the exact
   key comparison (that uses the floats themselves). *)
let mix h =
  let h = h lxor (h lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1B03738712FAD5C9 in
  h lxor (h lsr 32)

let float_bits v = Int64.to_int (Int64.bits_of_float v)

let line_index cache vgs vds =
  mix (float_bits vgs lxor mix (float_bits vds) lxor cache.line_seed)
  land cache.mask

let find_or_add t ~vgs ~vds compute =
  if t.cfg.size <= 0 then compute ~vgs ~vds
  else begin
    let vgs = quantise t vgs and vds = quantise t vds in
    let slot = Obs.current_slot () in
    if slot >= max_slots then compute ~vgs ~vds
    else begin
      let c = slot_cache t slot in
      let ix = line_index c vgs vds in
      if
        Bytes.unsafe_get c.occupied ix <> '\000'
        && c.key_vgs.(ix) = vgs
        && c.key_vds.(ix) = vds
      then begin
        c.s_hits <- c.s_hits + 1;
        Obs.incr c_hits;
        (c.val_vsc.(ix), c.val_ids.(ix))
      end
      else begin
        let ((vsc, ids) as r) = compute ~vgs ~vds in
        if Bytes.unsafe_get c.occupied ix <> '\000' then begin
          c.s_evictions <- c.s_evictions + 1;
          Obs.incr c_evictions
        end
        else Bytes.unsafe_set c.occupied ix '\001';
        c.s_misses <- c.s_misses + 1;
        Obs.incr c_misses;
        c.key_vgs.(ix) <- vgs;
        c.key_vds.(ix) <- vds;
        c.val_vsc.(ix) <- vsc;
        c.val_ids.(ix) <- ids;
        r
      end
    end
  end

let stats t =
  Array.fold_left
    (fun acc slot ->
      match slot with
      | None -> acc
      | Some c ->
          {
            hits = acc.hits + c.s_hits;
            misses = acc.misses + c.s_misses;
            evictions = acc.evictions + c.s_evictions;
          })
    { hits = 0; misses = 0; evictions = 0 }
    t.slots

let clear t = Array.fill t.slots 0 max_slots None
