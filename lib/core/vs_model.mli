(** Virtual-source ballistic CNFET compact model (Lee et al.) — the
    first non-piecewise backend of the {!Device_model} registry.

    [I_DS = Q_ix0 v_x0 F_sat] with a softplus virtual-source charge,
    DIBL-shifted threshold and an empirical saturation function;
    construction is closed-form from the device geometry (no fitting).
    Reverse operation ([V_DS < 0]) is the source/drain swap
    [I(V_GS, V_DS) = -I(V_GD, -V_DS)], so the current is continuous and
    monotone in [V_DS]; p-type devices are the electron-hole mirror as
    in {!Cnt_model}. *)

open Cnt_physics

type polarity = Cnt_model.polarity =
  | N_type
  | P_type

type params = {
  vt0 : float;  (** threshold voltage at [V_DS = 0], V *)
  dibl : float;  (** drain-induced barrier lowering, V/V *)
  n_ss : float;  (** subthreshold ideality factor *)
  vxo : float;  (** virtual-source injection velocity, m/s *)
  beta : float;  (** saturation transition exponent *)
  vdsat : float;  (** saturation voltage scale, V *)
  cinv : float;  (** gate-to-channel inversion capacitance, F/m *)
}

type t

val make :
  ?polarity:polarity ->
  ?vt0:float ->
  ?dibl:float ->
  ?n_ss:float ->
  ?vxo:float ->
  ?beta:float ->
  ?vdsat:float ->
  ?cinv:float ->
  Device.t ->
  t
(** Build a model on a device.  Defaults: [vt0 = 0.3] V,
    [dibl = 0.05], [n_ss = 1.1], [vxo = 4e5] m/s, [beta = 1.8],
    [vdsat = 3 n phi_t], [cinv = Device.c_gate].  Raises
    [Invalid_argument] on non-positive [n]/[vxo]/[beta]/[vdsat]/[cinv]. *)

val device : t -> Device.t
val polarity : t -> polarity
val params : t -> params

val identity : t -> string
(** Canonical identity string ("vs|..."), hex floats; see
    {!Cnt_model.identity} for the contract. *)

val set_cache : t -> Eval_cache.config -> unit
val cache_config : t -> Eval_cache.config
val cache_stats : t -> Eval_cache.stats

val ids : t -> vgs:float -> vds:float -> float
(** Drain current (A).  Negative for p-type devices under positive
    bias, matching {!Cnt_model.ids}. *)

val charges : t -> vgs:float -> vds:float -> float * float * float
(** [(0, q_s, q_d)]: the virtual-source charge (C/m) at the bias point
    and at the source/drain-swapped point.  The first slot is 0 — this
    model has no self-consistent voltage. *)

val gm : ?dv:float -> t -> vgs:float -> vds:float -> float
val gds : ?dv:float -> t -> vgs:float -> vds:float -> float

val pp : Format.formatter -> t -> unit
