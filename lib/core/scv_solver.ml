(* Closed-form solution of the self-consistent voltage equation
   (paper eq. 7) for piecewise-polynomial charge curves.

   With Q_S a piecewise polynomial of degree <= 3 and
   Q_D(V) = Q_S(V + V_DS), the residual

     F(V) = C_Sigma V + Q_t - Q_S(V) - Q_D(V)

   is a single polynomial of degree <= 3 on every interval between
   consecutive merged breakpoints {b_i} u {b_i - V_DS}.  F is strictly
   increasing (C_Sigma > 0 and the charge curves are non-increasing),
   so exactly one interval brackets the root, found by scanning the
   breakpoint residuals; the root itself comes from the closed-form
   linear/quadratic/Cardano formulas — no Newton-Raphson iterations
   and no numerical integration, which is the paper's entire point. *)

open Cnt_numerics
module Obs = Cnt_obs.Obs

type t = {
  qs : Piecewise.t; (* source charge vs V_SC, C/m *)
  c_sigma : float; (* F/m *)
}

(* Closed-form root evaluations by piece degree, plus the defensive
   bisection rescues — the per-branch cost profile behind the paper's
   no-Newton claim. *)
let c_solves = Obs.counter "scv.solves"
let c_linear = Obs.counter "scv.root_linear"
let c_quadratic = Obs.counter "scv.root_quadratic"
let c_cubic = Obs.counter "scv.root_cardano"
let c_fallback = Obs.counter "scv.fallback_bisection"

(* Always-on process-wide count of bisection rescues.  Unlike the Obs
   counter above it ticks even with telemetry disabled, so convergence
   diagnostics (Cnt_spice strategy trails) can report how many device
   evaluations degenerated during a solve attempt.  Atomic because
   device models are evaluated from pool worker domains; under a
   parallel sweep a delta taken around one solve attempt may therefore
   include rescues from concurrent attempts — treat it as an engine-wide
   health signal, not a per-attempt exact count. *)
let fallback_total = Atomic.make 0

let fallback_events () = Atomic.get fallback_total

type stats = {
  vsc : float;
  interval : float * float; (* bracketing interval (may be infinite) *)
  degree : int; (* degree of the polynomial solved *)
  used_fallback : bool; (* true when bisection rescued a degenerate case *)
}

let create ~qs ~c_sigma =
  if c_sigma <= 0.0 then invalid_arg "Scv_solver.create: c_sigma must be positive";
  { qs; c_sigma }

let qs t = t.qs
let c_sigma t = t.c_sigma

(* Merged, sorted, deduplicated breakpoints of Q_S(V) and Q_S(V+vds). *)
let merged_breakpoints t ~vds =
  let bs = Piecewise.boundaries t.qs in
  let shifted = Array.map (fun b -> b -. vds) bs in
  let all = Array.append bs shifted in
  Array.sort compare all;
  let out = ref [] in
  Array.iter
    (fun b ->
      match !out with
      | prev :: _ when Float.abs (b -. prev) <= 1e-15 -> ()
      | _ -> out := b :: !out)
    all;
  Array.of_list (List.rev !out)

let residual t ~qt ~vds v =
  (t.c_sigma *. v) +. qt -. Piecewise.eval t.qs v
  -. Piecewise.eval t.qs (v +. vds)

(* The polynomial form of F on the interval containing [x]. *)
let residual_poly t ~qt ~vds x =
  let open Polynomial in
  let linear = of_coeffs [| qt; t.c_sigma |] in
  let ps = Piecewise.piece_at t.qs x in
  (* piece of the drain curve as a function of V: q_d(V) = p(V + vds) *)
  let pd = Polynomial.shift (Piecewise.piece_at t.qs (x +. vds)) vds in
  sub (sub linear ps) pd

(* Endpoints of interval [k] of the merged-breakpoint partition:
   interval 0 is (-inf, b_0], interval k is (b_{k-1}, b_k], interval n
   is (b_{n-1}, +inf) — with the degenerate no-breakpoint partition
   treated as (0, +inf), matching the historical scan result. *)
let interval_bounds bps k =
  let n = Array.length bps in
  if n = 0 then (0.0, infinity)
  else if k = 0 then (neg_infinity, bps.(0))
  else if k = n then (bps.(n - 1), infinity)
  else (bps.(k - 1), bps.(k))

(* the representative point selects the pieces; it must be strictly
   interior to the interval, because a point sitting exactly on a
   shifted breakpoint can be misclassified by floating-point error
   when re-shifted by vds *)
let representative_of ~lo ~hi =
  if Float.is_finite lo && Float.is_finite hi then 0.5 *. (lo +. hi)
  else if Float.is_finite hi then hi -. 1.0
  else lo +. 1.0

(* Closed-form solve of the residual polynomial on one bracketing
   interval — the tail shared by the scalar path and the batched plan
   path, so the two are the same floating-point program by
   construction. *)
let solve_on_interval t ~qt ~vds ~lo ~hi poly =
  let deg = Polynomial.degree poly in
  Obs.incr c_solves;
  Obs.incr
    (match deg with
    | 3 -> c_cubic
    | 2 -> c_quadratic
    | _ -> c_linear);
  let eps = 1e-9 in
  let in_interval r = r >= lo -. eps && r <= hi +. eps in
  let candidates =
    List.filter in_interval (Polynomial.real_roots_closed_form poly)
  in
  let clamp v = Float.min (Float.max v lo) hi in
  match candidates with
  | [ r ] ->
      { vsc = clamp r; interval = (lo, hi); degree = deg; used_fallback = false }
  | r :: _ :: _ ->
      (* multiple closed-form roots landed inside (degenerate shapes);
         keep the one with the smallest residual *)
      let best =
        List.fold_left
          (fun acc r ->
            if
              Float.abs (residual t ~qt ~vds r)
              < Float.abs (residual t ~qt ~vds acc)
            then r
            else acc)
          r candidates
      in
      { vsc = clamp best; interval = (lo, hi); degree = deg; used_fallback = false }
  | [] ->
      (* defensive fallback: bisection on a finite cover of the interval;
         not reached for well-formed monotone charge fits *)
      Obs.incr c_fallback;
      Atomic.incr fallback_total;
      let flo = if Float.is_finite lo then lo else hi -. 10.0 in
      let fhi = if Float.is_finite hi then hi else lo +. 10.0 in
      let r = Rootfind.bisect ~tol:1e-13 (residual t ~qt ~vds) flo fhi in
      {
        vsc = r.Rootfind.root;
        interval = (lo, hi);
        degree = deg;
        used_fallback = true;
      }

let solve_stats t ~qt ~vds =
  let bps = merged_breakpoints t ~vds in
  let n = Array.length bps in
  (* locate the bracketing interval: first breakpoint with F >= 0 *)
  let rec find i =
    if i >= n then n
    else if residual t ~qt ~vds bps.(i) >= 0.0 then i
    else find (i + 1)
  in
  let k = find 0 in
  let lo, hi = interval_bounds bps k in
  let poly = residual_poly t ~qt ~vds (representative_of ~lo ~hi) in
  solve_on_interval t ~qt ~vds ~lo ~hi poly

let solve t ~qt ~vds = (solve_stats t ~qt ~vds).vsc

(* ------------------------------------------------------------------ *)
(* Batched evaluation plans                                            *)
(* ------------------------------------------------------------------ *)

(* Everything in the scalar solve that depends only on (solver, vds) —
   merged breakpoints, the charge-curve values at them, and the source
   and shifted-drain piece polynomials of every interval — hoisted out
   so a whole bias grid at one drain voltage pays for it once.  The
   remaining per-point work is the O(breakpoints) residual scan, two
   small polynomial subtractions and the closed-form root.

   Each precomputed part is produced by the same function calls on the
   same inputs as the scalar path, and the per-point residual
   [(c_sigma * b + qt) - e1 - e2] replays the scalar operation order
   with e1, e2 memoised, so [solve_plan] is bitwise-equal to [solve]
   at every (qt, vds) — the property test suite pins this. *)

type interval = {
  iv_lo : float;
  iv_hi : float;
  iv_ps : Polynomial.t; (* source piece on this interval *)
  iv_pd : Polynomial.t; (* drain piece, pre-shifted by vds *)
}

type plan = {
  owner : t;
  plan_vds : float;
  bps : float array;
  e1 : float array; (* Q_S(b_i) *)
  e2 : float array; (* Q_S(b_i + vds) *)
  intervals : interval array; (* length = breakpoints + 1 *)
}

let plan t ~vds =
  let bps = merged_breakpoints t ~vds in
  let n = Array.length bps in
  let e1 = Array.map (fun b -> Piecewise.eval t.qs b) bps in
  let e2 = Array.map (fun b -> Piecewise.eval t.qs (b +. vds)) bps in
  let intervals =
    Array.init (n + 1) (fun k ->
        let lo, hi = interval_bounds bps k in
        let x = representative_of ~lo ~hi in
        {
          iv_lo = lo;
          iv_hi = hi;
          iv_ps = Piecewise.piece_at t.qs x;
          iv_pd = Polynomial.shift (Piecewise.piece_at t.qs (x +. vds)) vds;
        })
  in
  { owner = t; plan_vds = vds; bps; e1; e2; intervals }

let plan_vds p = p.plan_vds

let solve_plan p ~qt =
  let t = p.owner in
  let n = Array.length p.bps in
  let rec find i =
    if i >= n then n
    else if
      (t.c_sigma *. p.bps.(i)) +. qt -. p.e1.(i) -. p.e2.(i) >= 0.0
    then i
    else find (i + 1)
  in
  let k = find 0 in
  let iv = p.intervals.(k) in
  let poly =
    Polynomial.(
      sub (sub (of_coeffs [| qt; t.c_sigma |]) iv.iv_ps) iv.iv_pd)
  in
  (solve_on_interval t ~qt ~vds:p.plan_vds ~lo:iv.iv_lo ~hi:iv.iv_hi poly).vsc
