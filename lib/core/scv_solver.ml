(* Closed-form solution of the self-consistent voltage equation
   (paper eq. 7) for piecewise-polynomial charge curves.

   With Q_S a piecewise polynomial of degree <= 3 and
   Q_D(V) = Q_S(V + V_DS), the residual

     F(V) = C_Sigma V + Q_t - Q_S(V) - Q_D(V)

   is a single polynomial of degree <= 3 on every interval between
   consecutive merged breakpoints {b_i} u {b_i - V_DS}.  F is strictly
   increasing (C_Sigma > 0 and the charge curves are non-increasing),
   so exactly one interval brackets the root, found by scanning the
   breakpoint residuals; the root itself comes from the closed-form
   linear/quadratic/Cardano formulas — no Newton-Raphson iterations
   and no numerical integration, which is the paper's entire point. *)

open Cnt_numerics
module Obs = Cnt_obs.Obs

type t = {
  qs : Piecewise.t; (* source charge vs V_SC, C/m *)
  c_sigma : float; (* F/m *)
  sbs : float array; (* cached copy of the source breakpoints, ascending *)
  scratch_len : int; (* max piece coefficient count, >= 2; sizes plan scratch *)
  neg_pieces : Polynomial.t array;
      (* [Polynomial.neg] of each source piece, precomputed so interval
         records can reference them without re-negating per plan *)
  qpieces : Polynomial.t array; (* the source pieces themselves *)
  sbs_qs : float array;
      (* Q_S at each source breakpoint — the values the plan scan's
         lazy fills would recompute for source-origin merged
         breakpoints, hoisted to construction *)
}

(* Closed-form root evaluations by piece degree, plus the defensive
   bisection rescues — the per-branch cost profile behind the paper's
   no-Newton claim. *)
let c_solves = Obs.counter "scv.solves"
let c_linear = Obs.counter "scv.root_linear"
let c_quadratic = Obs.counter "scv.root_quadratic"
let c_cubic = Obs.counter "scv.root_cardano"
let c_fallback = Obs.counter "scv.fallback_bisection"

(* Always-on process-wide count of bisection rescues.  Unlike the Obs
   counter above it ticks even with telemetry disabled, so convergence
   diagnostics (Cnt_spice strategy trails) can report how many device
   evaluations degenerated during a solve attempt.  Atomic because
   device models are evaluated from pool worker domains; under a
   parallel sweep a delta taken around one solve attempt may therefore
   include rescues from concurrent attempts — treat it as an engine-wide
   health signal, not a per-attempt exact count. *)
let fallback_total = Atomic.make 0

let fallback_events () = Atomic.get fallback_total

type stats = {
  vsc : float;
  interval : float * float; (* bracketing interval (may be infinite) *)
  degree : int; (* degree of the polynomial solved *)
  used_fallback : bool; (* true when bisection rescued a degenerate case *)
}

let create ~qs ~c_sigma =
  if c_sigma <= 0.0 then invalid_arg "Scv_solver.create: c_sigma must be positive";
  (* cache the breakpoints ([Piecewise.boundaries] copies on every
     call) and the widest piece, which bounds every residual
     polynomial a plan can build *)
  let sbs = Piecewise.boundaries qs in
  let n = Array.length sbs in
  let scratch_len = ref 2 in
  for k = 0 to n do
    let x =
      if n = 0 then 0.0
      else if k = 0 then sbs.(0) -. 1.0
      else if k = n then sbs.(n - 1) +. 1.0
      else 0.5 *. (sbs.(k - 1) +. sbs.(k))
    in
    let len = Array.length (Piecewise.piece_at qs x) in
    if len > !scratch_len then scratch_len := len
  done;
  {
    qs;
    c_sigma;
    sbs;
    scratch_len = !scratch_len;
    neg_pieces = Array.map Polynomial.neg (Piecewise.pieces qs);
    qpieces = Piecewise.pieces qs;
    sbs_qs = Array.map (fun b -> Piecewise.eval qs b) sbs;
  }

let qs t = t.qs
let c_sigma t = t.c_sigma

(* Merged, sorted, deduplicated breakpoints of Q_S(V) and Q_S(V+vds). *)
let merged_breakpoints t ~vds =
  let bs = Piecewise.boundaries t.qs in
  let shifted = Array.map (fun b -> b -. vds) bs in
  let all = Array.append bs shifted in
  Array.sort compare all;
  let out = ref [] in
  Array.iter
    (fun b ->
      match !out with
      | prev :: _ when Float.abs (b -. prev) <= 1e-15 -> ()
      | _ -> out := b :: !out)
    all;
  Array.of_list (List.rev !out)

let residual t ~qt ~vds v =
  (t.c_sigma *. v) +. qt -. Piecewise.eval t.qs v
  -. Piecewise.eval t.qs (v +. vds)

(* The polynomial form of F on the interval containing [x]. *)
let residual_poly t ~qt ~vds x =
  let open Polynomial in
  let linear = of_coeffs [| qt; t.c_sigma |] in
  let ps = Piecewise.piece_at t.qs x in
  (* piece of the drain curve as a function of V: q_d(V) = p(V + vds) *)
  let pd = Polynomial.shift (Piecewise.piece_at t.qs (x +. vds)) vds in
  sub (sub linear ps) pd

(* Endpoints of interval [k] of the merged-breakpoint partition:
   interval 0 is (-inf, b_0], interval k is (b_{k-1}, b_k], interval n
   is (b_{n-1}, +inf) — with the degenerate no-breakpoint partition
   treated as (0, +inf), matching the historical scan result. *)
let interval_bounds_n bps n k =
  if n = 0 then (0.0, infinity)
  else if k = 0 then (neg_infinity, bps.(0))
  else if k = n then (bps.(n - 1), infinity)
  else (bps.(k - 1), bps.(k))

let interval_bounds bps k = interval_bounds_n bps (Array.length bps) k

(* the representative point selects the pieces; it must be strictly
   interior to the interval, because a point sitting exactly on a
   shifted breakpoint can be misclassified by floating-point error
   when re-shifted by vds *)
let representative_of ~lo ~hi =
  if Float.is_finite lo && Float.is_finite hi then 0.5 *. (lo +. hi)
  else if Float.is_finite hi then hi -. 1.0
  else lo +. 1.0

(* Closed-form solve of the residual polynomial on one bracketing
   interval — the tail shared by the scalar path and the batched plan
   path, so the two are the same floating-point program by
   construction. *)
let solve_on_interval t ~qt ~vds ~lo ~hi poly =
  (* both call sites hand over a trimmed polynomial (residual_poly
     normalises; the plan path trims as it builds), so the degree read
     and the trimmed root extraction match the historical
     normalise-then-solve bitwise without the defensive copy *)
  let deg = Array.length poly - 1 in
  Obs.incr c_solves;
  Obs.incr
    (match deg with
    | 3 -> c_cubic
    | 2 -> c_quadratic
    | _ -> c_linear);
  let eps = 1e-9 in
  (* roots and the in-interval filter run over a fixed 3-cell buffer
     ([real_roots_trimmed_into] writes bitwise what the list form
     returns; [List.filter] order is preserved by the in-place
     compaction), keeping root extraction off the allocator *)
  let rbuf = Array.make 3 0.0 in
  let nr = Polynomial.real_roots_trimmed_into poly rbuf in
  let nc = ref 0 in
  for i = 0 to nr - 1 do
    let r = Array.unsafe_get rbuf i in
    if r >= lo -. eps && r <= hi +. eps then begin
      Array.unsafe_set rbuf !nc r;
      incr nc
    end
  done;
  let clamp v = Float.min (Float.max v lo) hi in
  match !nc with
  | 1 ->
      {
        vsc = clamp rbuf.(0);
        interval = (lo, hi);
        degree = deg;
        used_fallback = false;
      }
  | 0 ->
      (* defensive fallback: bisection on a finite cover of the interval;
         not reached for well-formed monotone charge fits *)
      Obs.incr c_fallback;
      Atomic.incr fallback_total;
      let flo = if Float.is_finite lo then lo else hi -. 10.0 in
      let fhi = if Float.is_finite hi then hi else lo +. 10.0 in
      let r = Rootfind.bisect ~tol:1e-13 (residual t ~qt ~vds) flo fhi in
      {
        vsc = r.Rootfind.root;
        interval = (lo, hi);
        degree = deg;
        used_fallback = true;
      }
  | nc ->
      (* multiple closed-form roots landed inside (degenerate shapes);
         keep the one with the smallest residual — the fold starts from
         the first candidate and walks all of them, mirroring the
         historical [List.fold_left] over the full candidate list *)
      let best = ref rbuf.(0) in
      for i = 0 to nc - 1 do
        let r = rbuf.(i) in
        if
          Float.abs (residual t ~qt ~vds r)
          < Float.abs (residual t ~qt ~vds !best)
        then best := r
      done;
      {
        vsc = clamp !best;
        interval = (lo, hi);
        degree = deg;
        used_fallback = false;
      }

(* [solve_on_interval] for the plan path: the same counters, the same
   root extraction, filter, clamp and fallback program (bitwise — the
   assembly equivalence suite pins plan solves against scalar ones),
   but the roots land in the caller's scratch and only the voltage
   comes back, keeping the per-point solve off the allocator. *)
let solve_on_interval_vsc t ~qt ~vds ~lo ~hi ~rbuf poly =
  let deg = Array.length poly - 1 in
  Obs.incr c_solves;
  Obs.incr
    (match deg with
    | 3 -> c_cubic
    | 2 -> c_quadratic
    | _ -> c_linear);
  let eps = 1e-9 in
  let nr = Polynomial.real_roots_trimmed_into poly rbuf in
  let nc = ref 0 in
  for i = 0 to nr - 1 do
    let r = Array.unsafe_get rbuf i in
    if r >= lo -. eps && r <= hi +. eps then begin
      Array.unsafe_set rbuf !nc r;
      incr nc
    end
  done;
  match !nc with
  | 1 -> Float.min (Float.max rbuf.(0) lo) hi
  | 0 ->
      Obs.incr c_fallback;
      Atomic.incr fallback_total;
      let flo = if Float.is_finite lo then lo else hi -. 10.0 in
      let fhi = if Float.is_finite hi then hi else lo +. 10.0 in
      (Rootfind.bisect ~tol:1e-13 (residual t ~qt ~vds) flo fhi).Rootfind.root
  | nc ->
      let best = ref rbuf.(0) in
      for i = 0 to nc - 1 do
        let r = rbuf.(i) in
        if
          Float.abs (residual t ~qt ~vds r)
          < Float.abs (residual t ~qt ~vds !best)
        then best := r
      done;
      Float.min (Float.max !best lo) hi

let solve_stats t ~qt ~vds =
  let bps = merged_breakpoints t ~vds in
  let n = Array.length bps in
  (* locate the bracketing interval: first breakpoint with F >= 0 *)
  let rec find i =
    if i >= n then n
    else if residual t ~qt ~vds bps.(i) >= 0.0 then i
    else find (i + 1)
  in
  let k = find 0 in
  let lo, hi = interval_bounds bps k in
  let poly = residual_poly t ~qt ~vds (representative_of ~lo ~hi) in
  solve_on_interval t ~qt ~vds ~lo ~hi poly

let solve t ~qt ~vds = (solve_stats t ~qt ~vds).vsc

(* ------------------------------------------------------------------ *)
(* Batched evaluation plans                                            *)
(* ------------------------------------------------------------------ *)

(* Everything in the scalar solve that depends only on (solver, vds) —
   merged breakpoints, the charge-curve values at them, and the source
   and shifted-drain piece polynomials of every interval — hoisted out
   so a whole bias grid at one drain voltage pays for it once.  The
   remaining per-point work is the O(breakpoints) residual scan, one
   fused residual-polynomial build into plan-local scratch and the
   closed-form root.

   Plans are built lazily and cheaply: construction only merges the
   breakpoints (a two-pointer merge over the cached sorted source
   breakpoints and their [-vds]-shifted copies — the same ascending
   multiset, the same dedup-against-last-kept rule as the historical
   append+sort) and allocates the scratch; the breakpoint charge
   values fill on first touch of each scan position and the interval
   records (pieces pre-negated, drain piece pre-shifted) materialise
   on first solve landing in them.  The MNA batched assembly path
   builds three plans per device per Newton iteration, so plan
   construction sits on the hot path alongside [solve_plan].

   Each precomputed part is produced by the same function calls on the
   same inputs as the scalar path, and the per-point residual
   [(c_sigma * b + qt) - e1 - e2] replays the scalar operation order
   with e1, e2 memoised, so [solve_plan] is bitwise-equal to [solve]
   at every (qt, vds) — the property test suite pins this. *)

(* [Piecewise.piece_index] and [Piecewise.eval] replicated over the
   solver's cached copies of the boundary and piece arrays: the same
   left-inclusive boundary rule and the same Horner program, minus the
   call overhead — the plan scan's lazy fills run these tens of times
   per stencil evaluation. *)
let qs_piece_index t x =
  let bs = t.sbs in
  let nb = Array.length bs in
  let i = ref 0 in
  while !i < nb && not (x <= Array.unsafe_get bs !i) do
    incr i
  done;
  !i

let qs_eval t x =
  let p = Array.unsafe_get t.qpieces (qs_piece_index t x) in
  let acc = ref 0.0 in
  for j = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. Array.unsafe_get p j
  done;
  !acc

(* A reusable interval record: [replan] just drops the [iv_set] flag
   and [interval_of] refills the same storage, so retargeting a plan
   allocates nothing.  [iv_npd] holds the negated vds-shifted drain
   piece in its first [iv_nd] cells. *)
type interval = {
  mutable iv_set : bool;
  mutable iv_lo : float;
  mutable iv_hi : float;
  mutable iv_nps : Polynomial.t; (* negated source piece on this interval *)
  iv_npd : float array; (* negated drain piece, pre-shifted by vds *)
  mutable iv_nd : int; (* live coefficient count of [iv_npd] *)
}

(* A plan owns capacity for the worst-case merged-breakpoint count
   (2 * source breakpoints); [n_bps] is the live prefix for the current
   drain bias.  [replan] refills the same storage for a new vds, so a
   caller that keeps a plan per device pays the allocation once and the
   per-iteration cost is just the two-pointer merge. *)
type plan = {
  owner : t;
  mutable primed : bool; (* false only before the first [replan] *)
  mutable plan_vds : float;
  bps : float array; (* capacity 2 * |sbs|; live prefix [0, n_bps) *)
  bp_src : int array;
      (* source-breakpoint index when [bps.(i)] is exactly [sbs.(j)]
         (so Q_S there is the owner's precomputed [sbs_qs.(j)]), -1 for
         shifted drain breakpoints *)
  mutable n_bps : int;
  e1 : float array; (* Q_S(b_i), filled on demand *)
  e2 : float array; (* Q_S(b_i + vds), filled on demand *)
  mutable e_filled : int; (* e1/e2 valid for indices < e_filled *)
  ivs : interval array; (* capacity 2 * |sbs| + 1, refilled lazily *)
  s1 : float array; (* scratch: (qt + c V) - ps accumulation *)
  s2 : float array; (* scratch: full residual accumulation *)
  bufs : Polynomial.t array; (* trimmed residual polynomials by length *)
  rbuf : float array; (* root-extraction scratch, length 3 *)
}

let replan_force p ~vds =
  let t = p.owner in
  let sbs = t.sbs in
  let nb = Array.length sbs in
  let nb2 = 2 * nb in
  let out = p.bps in
  let src = p.bp_src in
  let i = ref 0 and j = ref 0 and kept = ref 0 and origin = ref (-1) in
  for _ = 1 to nb2 do
    let v =
      if !i >= nb then begin
        let v = sbs.(!j) -. vds in
        incr j;
        origin := -1;
        v
      end
      else if !j >= nb then begin
        let v = sbs.(!i) in
        origin := !i;
        incr i;
        v
      end
      else begin
        let a = sbs.(!i) and b = sbs.(!j) -. vds in
        if a <= b then begin
          origin := !i;
          incr i;
          a
        end
        else begin
          incr j;
          origin := -1;
          b
        end
      end
    in
    (* same keep rule as [merged_breakpoints]: drop only when provably
       within 1e-15 of the last kept value *)
    if !kept = 0 || not (Float.abs (v -. out.(!kept - 1)) <= 1e-15) then begin
      out.(!kept) <- v;
      src.(!kept) <- !origin;
      incr kept
    end
  done;
  p.primed <- true;
  p.plan_vds <- vds;
  p.n_bps <- !kept;
  p.e_filled <- 0;
  for k = 0 to !kept do
    p.ivs.(k).iv_set <- false
  done

(* Retargeting at the bias the plan already holds is a no-op: every
   derived part (breakpoints, memoised charge values, interval records)
   is a deterministic function of (owner, vds), so keeping the warm
   memos is bitwise-identical to rebuilding them — and it is what makes
   plan reuse pay on quasi-static waveforms, where most devices sit at
   an unchanged drain bias for many Newton iterations in a row.  The
   bit comparison (rather than [=]) keeps -0.0 vs 0.0 and NaN on the
   conservative rebuild path. *)
let replan p ~vds =
  if
    p.primed
    && Int64.equal (Int64.bits_of_float p.plan_vds) (Int64.bits_of_float vds)
  then ()
  else replan_force p ~vds

let plan t ~vds =
  let nb2 = 2 * Array.length t.sbs in
  let cap = t.scratch_len in
  let p =
    {
      owner = t;
      primed = false;
      plan_vds = 0.0;
      bps = Array.make (Int.max 1 nb2) 0.0;
      bp_src = Array.make (Int.max 1 nb2) (-1);
      n_bps = 0;
      e1 = Array.make (Int.max 1 nb2) 0.0;
      e2 = Array.make (Int.max 1 nb2) 0.0;
      e_filled = 0;
      ivs =
        Array.init (nb2 + 1) (fun _ ->
            {
              iv_set = false;
              iv_lo = 0.0;
              iv_hi = 0.0;
              iv_nps = Polynomial.zero;
              iv_npd = Array.make cap 0.0;
              iv_nd = 0;
            });
      s1 = Array.make cap 0.0;
      s2 = Array.make cap 0.0;
      bufs = Array.init (cap + 1) (fun l -> Array.make l 0.0);
      rbuf = Array.make 3 0.0;
    }
  in
  replan p ~vds;
  p

let plan_vds p = p.plan_vds

(* The interval record for slot [k], built on first use by the same
   calls as the scalar path ([interval_bounds], [representative_of],
   [piece_at], [shift]); pre-negating both pieces performs the [neg]
   half of the scalar path's [sub] once per interval.  The negated
   source piece comes straight from the owner's precomputed table, and
   the shifted drain piece is built by {!Polynomial.shift_into} through
   the plan's scratch (both bitwise-equal to the allocating calls they
   replace), so the only allocations left per interval are the record
   and the final exact-length coefficient copy. *)
let interval_of p k =
  let iv = p.ivs.(k) in
  if not iv.iv_set then begin
    let t = p.owner in
    let lo, hi = interval_bounds_n p.bps p.n_bps k in
    let x = representative_of ~lo ~hi in
    let nd =
      Polynomial.shift_into
        t.qpieces.(qs_piece_index t (x +. p.plan_vds))
        p.plan_vds iv.iv_npd p.s2
    in
    let npd = iv.iv_npd in
    for i = 0 to nd - 1 do
      Array.unsafe_set npd i (-.Array.unsafe_get npd i)
    done;
    iv.iv_lo <- lo;
    iv.iv_hi <- hi;
    iv.iv_nps <- t.neg_pieces.(qs_piece_index t x);
    iv.iv_nd <- nd;
    iv.iv_set <- true
  end;
  iv

let solve_plan p ~qt =
  let t = p.owner in
  let n = p.n_bps in
  let c = t.c_sigma in
  (* bracketing scan, memoising the breakpoint charge values on first
     touch; the residual replays the scalar operation order *)
  let k = ref 0 in
  let stop = ref false in
  while (not !stop) && !k < n do
    let i = !k in
    if i >= p.e_filled then begin
      (* a source-origin breakpoint is exactly [sbs.(j)], so Q_S there
         is the value [create] computed by the same [Piecewise.eval];
         drain-origin values (and every [b + vds]) depend on vds and
         are evaluated through the inlined replica *)
      let s = p.bp_src.(i) in
      p.e1.(i) <-
        (if s >= 0 then Array.unsafe_get t.sbs_qs s else qs_eval t p.bps.(i));
      p.e2.(i) <- qs_eval t (p.bps.(i) +. p.plan_vds);
      p.e_filled <- i + 1
    end;
    if (c *. p.bps.(i)) +. qt -. p.e1.(i) -. p.e2.(i) >= 0.0 then stop := true
    else incr k
  done;
  let iv = interval_of p !k in
  (* Residual polynomial [(qt + c V) - ps - pd] fused into the plan's
     scratch: each step adds coefficient-wise against a pre-negated
     piece over the max length and trims trailing [= 0.0]
     coefficients — the same floating-point sums and the same trim
     rule as [Polynomial.(sub (sub (of_coeffs [|qt; c|]) ps) pd)],
     without the intermediate allocations. *)
  let nps = iv.iv_nps and npd = iv.iv_npd in
  let lnps = Array.length nps in
  let s1 = p.s1 in
  let l1 = if lnps > 2 then lnps else 2 in
  for i = 0 to l1 - 1 do
    let a = if i = 0 then qt else if i = 1 then c else 0.0 in
    let b = if i < lnps then Array.unsafe_get nps i else 0.0 in
    Array.unsafe_set s1 i (a +. b)
  done;
  let n1 = ref l1 in
  while !n1 > 0 && s1.(!n1 - 1) = 0.0 do
    decr n1
  done;
  let n1 = !n1 in
  let lnpd = iv.iv_nd in
  let s2 = p.s2 in
  let l2 = if n1 > lnpd then n1 else lnpd in
  for i = 0 to l2 - 1 do
    let a = if i < n1 then Array.unsafe_get s1 i else 0.0 in
    let b = if i < lnpd then Array.unsafe_get npd i else 0.0 in
    Array.unsafe_set s2 i (a +. b)
  done;
  let n2 = ref l2 in
  while !n2 > 0 && s2.(!n2 - 1) = 0.0 do
    decr n2
  done;
  let n2 = !n2 in
  let poly = p.bufs.(n2) in
  Array.blit s2 0 poly 0 n2;
  solve_on_interval_vsc t ~qt ~vds:p.plan_vds ~lo:iv.iv_lo ~hi:iv.iv_hi
    ~rbuf:p.rbuf poly
