(* Virtual-source ballistic CNFET compact model (Lee et al., the
   sub-10nm CNFET neighbour named in PAPERS.md).

   The drain current is the charge at the virtual source times the
   injection velocity times an empirical saturation function:

     I_DS = Q_ix0(V_GS, V_DS) * v_x0 * F_sat(V_DS)

     Q_ix0 = C_inv n phi_t ln(1 + exp((V_GS - V_T) / (n phi_t)))
     V_T   = V_T0 - delta V_DS                    (DIBL)
     F_sat = (V_DS / V_dsat) / (1 + (V_DS / V_dsat)^beta)^(1/beta)

   Reverse operation (V_DS < 0) swaps source and drain:
   I(V_GS, V_DS) = -I(V_GD, -V_DS) with V_GD = V_GS - V_DS, which keeps
   the current continuous and monotone in V_DS through the origin.
   P-type devices are the electron-hole mirror, exactly as in
   {!Cnt_model}.

   Unlike the piecewise model there is no fitting step: construction is
   closed-form from the device geometry (C_inv defaults to the coaxial
   gate capacitance, phi_t to kT/q at the device temperature). *)

open Cnt_physics
module Obs = Cnt_obs.Obs

let c_ids_evals = Obs.counter "vs_model.ids_evals"

type polarity = Cnt_model.polarity =
  | N_type
  | P_type

type params = {
  vt0 : float;  (* threshold voltage at V_DS = 0, V *)
  dibl : float;  (* drain-induced barrier lowering, V/V *)
  n_ss : float;  (* subthreshold ideality factor *)
  vxo : float;  (* virtual-source injection velocity, m/s *)
  beta : float;  (* saturation transition exponent *)
  vdsat : float;  (* saturation voltage scale, V *)
  cinv : float;  (* gate-to-channel inversion capacitance, F/m *)
}

type t = {
  device : Device.t;
  polarity : polarity;
  p : params;
  phi_t : float;  (* thermal voltage kT/q at the device temperature, V *)
  identity : string;
  mutable cache : Eval_cache.store;
}

let identity_of ~polarity ~(device : Device.t) ~(p : params) =
  Printf.sprintf "vs|%s|T=%h|vt0=%h|dibl=%h|n=%h|vxo=%h|beta=%h|vdsat=%h|cinv=%h"
    (match polarity with N_type -> "n" | P_type -> "p")
    device.Device.temp p.vt0 p.dibl p.n_ss p.vxo p.beta p.vdsat p.cinv

let make ?(polarity = N_type) ?(vt0 = 0.3) ?(dibl = 0.05) ?(n_ss = 1.1)
    ?(vxo = 4.0e5) ?(beta = 1.8) ?vdsat ?cinv device =
  let phi_t = Fermi.kt_ev device.Device.temp in
  let vdsat = match vdsat with Some v -> v | None -> 3.0 *. n_ss *. phi_t in
  let cinv = match cinv with Some c -> c | None -> Device.c_gate device in
  let check name v =
    if not (Float.is_finite v && v > 0.0) then
      invalid_arg (Printf.sprintf "Vs_model.make: %s must be positive" name)
  in
  check "n" n_ss;
  check "vxo" vxo;
  check "beta" beta;
  check "vdsat" vdsat;
  check "cinv" cinv;
  let p = { vt0; dibl; n_ss; vxo; beta; vdsat; cinv } in
  let identity = identity_of ~polarity ~device ~p in
  {
    device;
    polarity;
    p;
    phi_t;
    identity;
    cache = Eval_cache.create ~identity (Eval_cache.default_config ());
  }

let device t = t.device
let polarity t = t.polarity
let params t = t.p
let identity t = t.identity

let set_cache t cfg = t.cache <- Eval_cache.create ~identity:t.identity cfg
let cache_config t = Eval_cache.config t.cache
let cache_stats t = Eval_cache.stats t.cache

(* Numerically safe ln(1 + exp x): for large x the exp overflows but
   the limit is x itself. *)
let softplus x = if x > 40.0 then x else Float.log1p (Float.exp x)

(* Forward current for oriented, non-negative V_DS.  Also returns the
   virtual-source charge (C/m) — the pair the cache memoises, mirroring
   the (V_SC, I_DS) pair of the piecewise store. *)
let forward t ~vgs ~vds =
  let vt = t.p.vt0 -. (t.p.dibl *. vds) in
  let nphi = t.p.n_ss *. t.phi_t in
  let qix0 = t.p.cinv *. nphi *. softplus ((vgs -. vt) /. nphi) in
  let x = vds /. t.p.vdsat in
  let fsat = x /. (((1.0 +. (x ** t.p.beta)) ** (1.0 /. t.p.beta))) in
  (qix0, qix0 *. t.p.vxo *. fsat)

(* (Q_ix0, I_DS) on oriented voltages with the n-type sign; the S/D
   swap handles the reverse region. *)
let solve_point t ~vgs ~vds =
  if vds >= 0.0 then forward t ~vgs ~vds
  else begin
    let q, i = forward t ~vgs:(vgs -. vds) ~vds:(-.vds) in
    (q, -.i)
  end

let oriented t ~vgs ~vds =
  match t.polarity with N_type -> (vgs, vds) | P_type -> (-.vgs, -.vds)

let cached_point t ~ovgs ~ovds =
  Eval_cache.find_or_add t.cache ~vgs:ovgs ~vds:ovds (fun ~vgs ~vds ->
      solve_point t ~vgs ~vds)

let ids t ~vgs ~vds =
  Obs.incr c_ids_evals;
  let ovgs, ovds = oriented t ~vgs ~vds in
  let i = snd (cached_point t ~ovgs ~ovds) in
  match t.polarity with N_type -> i | P_type -> -.i

(* Virtual-source charge and its drain-swapped counterpart, playing the
   role of the piecewise model's source/drain mobile charges. *)
let charges t ~vgs ~vds =
  let ovgs, ovds = oriented t ~vgs ~vds in
  let qs = fst (cached_point t ~ovgs ~ovds) in
  let qd = fst (cached_point t ~ovgs:(ovgs -. ovds) ~ovds:(-.ovds)) in
  (0.0, qs, qd)

let gm ?(dv = 1e-4) t ~vgs ~vds =
  (ids t ~vgs:(vgs +. dv) ~vds -. ids t ~vgs:(vgs -. dv) ~vds) /. (2.0 *. dv)

let gds ?(dv = 1e-4) t ~vgs ~vds =
  (ids t ~vgs ~vds:(vds +. dv) -. ids t ~vgs ~vds:(vds -. dv)) /. (2.0 *. dv)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s virtual-source model (%s)@ VT0 %g V, DIBL %g, n %g, vx0 %g m/s, \
     beta %g, Vdsat %g V, Cinv %g F/m@]"
    (match t.polarity with N_type -> "n-type" | P_type -> "p-type")
    t.device.Device.name t.p.vt0 t.p.dibl t.p.n_ss t.p.vxo t.p.beta t.p.vdsat
    t.p.cinv
