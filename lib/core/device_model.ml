(* The pluggable device-model tier.

   A [t] is a capability record: everything the MNA compiler, the
   batched assembly pipeline, the eval-cache plumbing and the
   manifest/export layers need from a CNFET model, with no reference to
   any concrete physics.  Backends register themselves in a global
   registry under a short name ("piecewise", "vs") together with the
   parameter schema their deck cards accept; decks pick a backend with
   the [model=] card attribute, runs override it with [--model] /
   [CNT_MODEL], and the server accepts a per-request ["model"] config
   field — all three resolve through {!of_card}/{!remodel} here.

   Construction is memoised on the canonical card (backend + polarity +
   resolved parameters) so a netlist with a thousand identical
   transistors builds the model once — this subsumes the parser's old
   fitted-model cache and extends it to every backend.  The memo also
   makes remodelling idempotent: equal cards return the physically same
   model, which keeps the compile caches keyed on physical identity
   hot. *)

open Cnt_physics

type polarity = Cnt_model.polarity =
  | N_type
  | P_type

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type stencil =
  fault_i0:bool ->
  vgs:float ->
  vds:float ->
  i0:vec ->
  gm:vec ->
  gds:vec ->
  k:int ->
  unit

type t = {
  backend : string;
  identity : string;
  polarity : polarity;
  device : Device.t;
  card : (string * string) list;
      (* canonical resolved card attributes (including "model"), plain
         float syntax — [remodel] re-parses these under another backend *)
  ids : vgs:float -> vds:float -> float;
  gm : vgs:float -> vds:float -> float;
  gds : vgs:float -> vds:float -> float;
  charges : vgs:float -> vds:float -> float * float * float;
  stencil : unit -> stencil;
  intrinsic_caps : length:float -> (float * float) option;
  set_cache : Eval_cache.config -> unit;
  cache_config : unit -> Eval_cache.config;
  cache_stats : unit -> Eval_cache.stats;
  as_piecewise : Cnt_model.t option;
  pp : Format.formatter -> unit;
}

let backend t = t.backend
let identity t = t.identity
let polarity t = t.polarity
let device t = t.device
let card t = t.card
let ids t = t.ids
let gm t = t.gm
let gds t = t.gds
let charges t = t.charges
let stencil t = t.stencil ()
let intrinsic_caps t = t.intrinsic_caps
let set_cache t cfg = t.set_cache cfg
let cache_config t = t.cache_config ()
let cache_stats t = t.cache_stats ()
let as_piecewise t = t.as_piecewise
let pp t fmt = t.pp fmt

(* ---------------------------------------------------------------- *)
(* Registry                                                         *)
(* ---------------------------------------------------------------- *)

type backend_info = {
  name : string;
  doc : string;
  params : (string * string) list;
}

type backend_impl = {
  info : backend_info;
  build :
    polarity:polarity ->
    number:(string -> float) ->
    (string * string) list ->
    (t, string) result;
}

let registry : (string, backend_impl) Hashtbl.t = Hashtbl.create 4
let registry_order : string list ref = ref []

let register info build =
  if Hashtbl.mem registry info.name then
    invalid_arg ("Device_model.register: duplicate backend " ^ info.name);
  Hashtbl.replace registry info.name { info; build };
  registry_order := !registry_order @ [ info.name ]

let backends () =
  List.map (fun n -> (Hashtbl.find registry n).info) !registry_order

let find name = Option.map (fun b -> b.info) (Hashtbl.find_opt registry name)

let backend_names () = String.concat ", " !registry_order

(* Model construction can be expensive (the piecewise backend fits a
   charge curve), so completed models are memoised on their canonical
   card.  The daemon parses decks from concurrent-ish contexts, so the
   table is mutex-protected; construction happens outside the lock
   (duplicated work on a race, never a deadlock against a backend that
   itself parses). *)
let memo : (string, t) Hashtbl.t = Hashtbl.create 8
let memo_mutex = Mutex.create ()

let memo_find key =
  Mutex.protect memo_mutex (fun () -> Hashtbl.find_opt memo key)

let memo_add key m =
  Mutex.protect memo_mutex (fun () ->
      match Hashtbl.find_opt memo key with
      | Some existing -> existing
      | None ->
          Hashtbl.add memo key m;
          m)

let memo_key ~backend ~polarity card =
  Printf.sprintf "%s|%s|%s" backend
    (match polarity with N_type -> "n" | P_type -> "p")
    (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) card))

let canon f = Printf.sprintf "%.17g" f

(* ---------------------------------------------------------------- *)
(* Shared pieces                                                    *)
(* ---------------------------------------------------------------- *)

(* Meyer-style split of the per-unit-length electrostatic capacitances
   into gate-source / gate-drain capacitors — the electrostatics come
   from the device geometry, not the transport model, so every backend
   shares it (and the piecewise backend stays bitwise-identical to the
   pre-registry Circuit code). *)
let caps_of_device dev ~length =
  if length <= 0.0 then None
  else begin
    let cg = Device.c_gate dev in
    let cd = Device.c_drain dev in
    let cs = Device.c_source dev in
    let cgs = ((0.5 *. cg) +. cs) *. length in
    let cgd = ((0.5 *. cg) +. cd) *. length in
    Some (cgs, cgd)
  end

(* Device attributes shared by every backend's card (d and tox in nm,
   matching the deck syntax). *)
let device_card (dev : Device.t) =
  [
    ("temp", canon dev.Device.temp);
    ("ef", canon dev.Device.fermi);
    ("d", canon (dev.Device.diameter *. 1e9));
    ("tox", canon (dev.Device.oxide_thickness *. 1e9));
    ("kappa", canon dev.Device.dielectric);
    ("alphag", canon dev.Device.alpha_g);
    ("alphad", canon dev.Device.alpha_d);
  ]

(* Returns the device plus its canonical geometry attributes.  The
   card keeps the resolved nm-level values, NOT a reconstruction from
   the SI device fields: the nm -> m -> nm round-trip is off by an ulp
   for inexact scales, which would give a remodelled card a different
   memo key (and so a physically different model) than the equivalent
   deck spelling. *)
let parse_device ~number attrs =
  let num key default =
    match List.assoc_opt key attrs with Some v -> number v | None -> default
  in
  let temp = num "temp" 300.0
  and fermi = num "ef" (-0.32)
  and d = num "d" 1.0
  and tox = num "tox" 1.5
  and kappa = num "kappa" 3.9
  and alpha_g = num "alphag" 0.88
  and alpha_d = num "alphad" 0.035 in
  let dev =
    Device.create ~temp ~fermi ~diameter:(d *. 1e-9)
      ~oxide_thickness:(tox *. 1e-9) ~dielectric:kappa ~alpha_g ~alpha_d ()
  in
  let card =
    [
      ("temp", canon temp);
      ("ef", canon fermi);
      ("d", canon d);
      ("tox", canon tox);
      ("kappa", canon kappa);
      ("alphag", canon alpha_g);
      ("alphad", canon alpha_d);
    ]
  in
  (dev, card)

(* ---------------------------------------------------------------- *)
(* Piecewise backend (the paper's Model 1 / Model 2)                *)
(* ---------------------------------------------------------------- *)

let of_piecewise ?(card = []) m =
  let dev = Cnt_model.device m in
  let card =
    if card <> [] then card
    else
      (* synthesised card for programmatically built models: enough to
         remodel onto another backend (device geometry), and back to a
         stock Model-2 piecewise fit *)
      ("model", "piecewise") :: device_card dev
  in
  {
    backend = "piecewise";
    identity = Cnt_model.identity m;
    polarity = Cnt_model.polarity m;
    device = dev;
    card;
    ids = (fun ~vgs ~vds -> Cnt_model.ids m ~vgs ~vds);
    gm = (fun ~vgs ~vds -> Cnt_model.gm m ~vgs ~vds);
    gds = (fun ~vgs ~vds -> Cnt_model.gds m ~vgs ~vds);
    charges = (fun ~vgs ~vds -> Cnt_model.charges m ~vgs ~vds);
    stencil =
      (fun () ->
        let ws = Cnt_model.stencil_ws m in
        fun ~fault_i0 ~vgs ~vds ~i0 ~gm ~gds ~k ->
          Cnt_model.eval_stencil ~ws m ~fault_i0 ~vgs ~vds ~i0 ~gm ~gds ~k);
    intrinsic_caps = (fun ~length -> caps_of_device dev ~length);
    set_cache = Cnt_model.set_cache m;
    cache_config = (fun () -> Cnt_model.cache_config m);
    cache_stats = (fun () -> Cnt_model.cache_stats m);
    as_piecewise = Some m;
    pp = (fun fmt -> Cnt_model.pp fmt m);
  }

let piecewise_info =
  {
    name = "piecewise";
    doc =
      "the paper's piecewise mobile-charge models (model=1|2, default 2) with \
       the closed-form self-consistent-voltage solver";
    params =
      [
        ("model", "1 | 2 | piecewise (= 2): piece count of the charge fit");
        ("temp", "temperature, K (default 300)");
        ("ef", "source Fermi level, eV (default -0.32)");
        ("d", "tube diameter, nm (default 1)");
        ("tox", "gate oxide thickness, nm (default 1.5)");
        ("kappa", "oxide relative permittivity (default 3.9)");
        ("alphag", "gate control parameter (default 0.88)");
        ("alphad", "drain control parameter (default 0.035)");
        ("optimise", "0|1: refine boundary offsets for this device");
      ];
  }

let piecewise_build ~polarity ~number attrs =
  let model_no =
    match List.assoc_opt "model" attrs with
    | None | Some "piecewise" -> Ok 2
    | Some v -> (
        match int_of_float (number v) with
        | 1 -> Ok 1
        | 2 -> Ok 2
        | n -> Error (Printf.sprintf "unknown CNFET model=%d (use 1 or 2)" n)
        | exception _ ->
            Error (Printf.sprintf "unknown CNFET model=%s (use 1 or 2)" v))
  in
  match model_no with
  | Error _ as e -> e
  | Ok model_no -> (
      let optimise =
        match List.assoc_opt "optimise" attrs with
        | Some v -> number v <> 0.0
        | None -> false
      in
      match parse_device ~number attrs with
      | exception Invalid_argument msg -> Error msg
      | dev, geometry ->
          let card =
            ("model", string_of_int model_no)
            :: geometry
            @ [ ("optimise", if optimise then "1" else "0") ]
          in
          let key = memo_key ~backend:"piecewise" ~polarity card in
          let m =
            match memo_find key with
            | Some m -> m
            | None ->
                let spec =
                  if model_no = 1 then Charge_fit.model1_spec
                  else Charge_fit.model2_spec
                in
                memo_add key
                  (of_piecewise ~card
                     (Cnt_model.make ~polarity ~spec ~optimise dev))
          in
          Ok m)

(* ---------------------------------------------------------------- *)
(* Virtual-source backend                                           *)
(* ---------------------------------------------------------------- *)

let of_vs ?(card = []) m =
  let dev = Vs_model.device m in
  let card =
    if card <> [] then card
    else begin
      let p = Vs_model.params m in
      (("model", "vs") :: device_card dev)
      @ [
          ("vt0", canon p.Vs_model.vt0);
          ("dibl", canon p.Vs_model.dibl);
          ("nss", canon p.Vs_model.n_ss);
          ("vxo", canon p.Vs_model.vxo);
          ("beta", canon p.Vs_model.beta);
          ("vdsat", canon p.Vs_model.vdsat);
          ("cinv", canon p.Vs_model.cinv);
        ]
    end
  in
  {
    backend = "vs";
    identity = Vs_model.identity m;
    polarity = Vs_model.polarity m;
    device = dev;
    card;
    ids = (fun ~vgs ~vds -> Vs_model.ids m ~vgs ~vds);
    gm = (fun ~vgs ~vds -> Vs_model.gm m ~vgs ~vds);
    gds = (fun ~vgs ~vds -> Vs_model.gds m ~vgs ~vds);
    charges = (fun ~vgs ~vds -> Vs_model.charges m ~vgs ~vds);
    stencil =
      (fun () ->
        (* the VS evaluation is closed-form with no per-drain-bias plan
           to hoist, so the batched stencil is exactly the five scalar
           calls — bitwise equality with scalar assembly is free *)
        fun ~fault_i0 ~vgs ~vds ~i0 ~gm ~gds ~k ->
          let i0v =
            if fault_i0 then Float.nan else Vs_model.ids m ~vgs ~vds
          in
          let gmv = Vs_model.gm m ~vgs ~vds in
          let gdsv = Vs_model.gds m ~vgs ~vds in
          Bigarray.Array1.unsafe_set i0 k i0v;
          Bigarray.Array1.unsafe_set gm k gmv;
          Bigarray.Array1.unsafe_set gds k gdsv);
    intrinsic_caps = (fun ~length -> caps_of_device dev ~length);
    set_cache = Vs_model.set_cache m;
    cache_config = (fun () -> Vs_model.cache_config m);
    cache_stats = (fun () -> Vs_model.cache_stats m);
    as_piecewise = None;
    pp = (fun fmt -> Vs_model.pp fmt m);
  }

let vs_info =
  {
    name = "vs";
    doc =
      "virtual-source ballistic CNFET model (Lee et al.): closed-form \
       charge-times-injection-velocity current with DIBL and an empirical \
       saturation function; no fitting step";
    params =
      [
        ("temp", "temperature, K (default 300)");
        ("ef", "source Fermi level, eV — device geometry only");
        ("d", "tube diameter, nm (default 1)");
        ("tox", "gate oxide thickness, nm (default 1.5)");
        ("kappa", "oxide relative permittivity (default 3.9)");
        ("vt0", "threshold voltage at VDS=0, V (default 0.3)");
        ("dibl", "drain-induced barrier lowering, V/V (default 0.05)");
        ("nss", "subthreshold ideality factor (default 1.1)");
        ("vxo", "injection velocity, m/s (default 4e5)");
        ("beta", "saturation transition exponent (default 1.8)");
        ("vdsat", "saturation voltage, V (default 3 n phi_t)");
        ("cinv", "inversion capacitance, F/m (default coaxial C_G)");
      ];
  }

let vs_build ~polarity ~number attrs =
  let opt key = Option.map number (List.assoc_opt key attrs) in
  match parse_device ~number attrs with
  | exception Invalid_argument msg -> Error msg
  | dev, geometry -> (
      match
        Vs_model.make ~polarity ?vt0:(opt "vt0") ?dibl:(opt "dibl")
          ?n_ss:(opt "nss") ?vxo:(opt "vxo") ?beta:(opt "beta")
          ?vdsat:(opt "vdsat") ?cinv:(opt "cinv") dev
      with
      | exception Invalid_argument msg -> Error msg
      | m ->
          (* memoise on the fully resolved card so defaulted, explicit
             and remodelled spellings of the same model share one
             instance *)
          let p = Vs_model.params m in
          let card =
            (("model", "vs") :: geometry)
            @ [
                ("vt0", canon p.Vs_model.vt0);
                ("dibl", canon p.Vs_model.dibl);
                ("nss", canon p.Vs_model.n_ss);
                ("vxo", canon p.Vs_model.vxo);
                ("beta", canon p.Vs_model.beta);
                ("vdsat", canon p.Vs_model.vdsat);
                ("cinv", canon p.Vs_model.cinv);
              ]
          in
          let key = memo_key ~backend:"vs" ~polarity card in
          Ok
            (match memo_find key with
            | Some m -> m
            | None -> memo_add key (of_vs ~card m)))

let () =
  register piecewise_info piecewise_build;
  register vs_info vs_build

(* ---------------------------------------------------------------- *)
(* Card resolution and remodelling                                  *)
(* ---------------------------------------------------------------- *)

(* Which backend does a card's [model=] attribute name?  Bare integers
   are piecewise specs for deck compatibility. *)
let backend_of_attr = function
  | None -> Ok "piecewise"
  | Some v -> (
      match v with
      | "1" | "2" | "piecewise" -> Ok "piecewise"
      | v when Hashtbl.mem registry v -> Ok v
      | v ->
          Error
            (Printf.sprintf
               "unknown device model %S (use 1, 2 or a registered backend: %s)"
               v (backend_names ())))

let of_card ?backend ~polarity ~number attrs =
  let chosen =
    match backend with
    | Some b -> (
        match Hashtbl.mem registry b with
        | true -> Ok b
        | false ->
            Error
              (Printf.sprintf "unknown model backend %S (registered: %s)" b
                 (backend_names ())))
    | None -> backend_of_attr (List.assoc_opt "model" attrs)
  in
  match chosen with
  | Error _ as e -> e
  | Ok name -> (Hashtbl.find registry name).build ~polarity ~number attrs

let plain_number s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> invalid_arg ("Device_model: bad number " ^ s)

let remodel m ~backend:name =
  if m.backend = name then Ok m
  else
    let attrs = List.remove_assoc "model" m.card in
    of_card ~backend:name ~polarity:m.polarity ~number:plain_number attrs

(* ---------------------------------------------------------------- *)
(* Ambient run-level override (--model / CNT_MODEL)                 *)
(* ---------------------------------------------------------------- *)

(* [None] = unresolved; [Some None] = resolved, no override.  An empty
   CNT_MODEL counts as unset so harnesses can neutralise the variable. *)
let override_state : string option option ref = ref None

let default_override () =
  match !override_state with
  | Some o -> o
  | None ->
      let o =
        match Sys.getenv_opt "CNT_MODEL" with
        | None | Some "" -> None
        | Some s -> Some s
      in
      override_state := Some o;
      o

let set_default_override o = override_state := Some o
