(* Boundary optimisation against the quantity that actually matters:
   the drain-current error versus the reference model.

   Charge_fit.optimise_boundaries minimises the charge-curve RMS (the
   paper's stated objective).  Because the current depends on the
   charge only through the self-consistent feedback, the charge
   optimum is not exactly the current optimum; this module closes the
   loop by scoring each candidate boundary set on a small bias grid
   against a precomputed reference surface. *)

open Cnt_numerics
open Cnt_physics

type bias_grid = {
  vgs : float array;
  vds : float array;
}

let default_grid =
  { vgs = [| 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 |]; vds = Grid.linspace 0.0 0.6 13 }

(* Reference current surface, row per V_GS. *)
let reference_surface ?(grid = default_grid) fettoy =
  Array.map
    (fun vgs -> Array.map (fun vds -> Fettoy.ids fettoy ~vgs ~vds) grid.vds)
    grid.vgs

(* Mean (over gate voltages) relative RMS current error of a model
   against a precomputed reference surface. *)
let current_error ?(grid = default_grid) ~reference model =
  let g = Cnt_model.eval_batch model ~vgs:grid.vgs ~vds:grid.vds in
  let nj = Array.length grid.vds in
  let total = ref 0.0 in
  Array.iteri
    (fun i _vgs ->
      let approx = Array.init nj (fun j -> Bigarray.Array2.get g i j) in
      total := !total +. Stats.relative_rms_error reference.(i) approx)
    grid.vgs;
  !total /. float_of_int (Array.length grid.vgs)

(* Optimise the boundary offsets of [spec] for [device], minimising the
   mean relative RMS drain-current error against the reference model on
   [grid].  The expensive pieces (the theory charge curve and the
   reference surface) are computed once; each Nelder-Mead step costs
   one linear least-squares fit plus a grid of closed-form current
   evaluations. *)
let optimise_for_current ?(grid = default_grid) ?(min_gap = 0.02)
    ?(max_iter = 300) ?polarity device spec =
  let fettoy = Fettoy.create device in
  let reference = reference_surface ~grid fettoy in
  let profile = Device.charge_profile device in
  let k = Array.length spec.Charge_fit.offsets in
  let fermi = profile.Charge.fermi in
  let theory =
    Charge_fit.sample_theory ~points:800 profile
      ~lo:(fermi +. spec.Charge_fit.offsets.(0) -. spec.Charge_fit.window -. 0.4)
      ~hi:(fermi +. spec.Charge_fit.offsets.(k - 1) +. 0.3)
  in
  let objective offsets =
    let ascending =
      let rec go i =
        i >= k - 1 || (offsets.(i + 1) -. offsets.(i) >= min_gap && go (i + 1))
      in
      go 0
    in
    if not ascending then 1e9
    else begin
      match
        Cnt_model.make ?polarity
          ~spec:(Charge_fit.with_offsets spec offsets)
          ~theory device
      with
      | model -> current_error ~grid ~reference model
      | exception _ -> 1e9
    end
  in
  let best_offsets, best_err =
    Optimize.nelder_mead ~tol:1e-7 ~max_iter ~initial_step:0.25 objective
      (Array.copy spec.Charge_fit.offsets)
  in
  let refined = Charge_fit.with_offsets spec best_offsets in
  (refined, Cnt_model.make ?polarity ~spec:refined ~theory device, best_err)
