(* Top-level circuit-ready CNFET model: a fitted piecewise charge
   approximation plus the closed-form self-consistent-voltage solver
   and the analytic drain-current expression (paper eq. 14).

   Construction performs the one-off numerical work (equilibrium
   density, charge-curve fit); evaluation afterwards involves no
   integration and no iteration, which is what makes the model >10^3
   faster than the reference. *)

open Cnt_numerics
open Cnt_physics
module Obs = Cnt_obs.Obs

let c_ids_evals = Obs.counter "cnt_model.ids_evals"
let c_fits = Obs.counter "cnt_model.fits"

type polarity =
  | N_type
  | P_type

type t = {
  device : Device.t;
  polarity : polarity;
  spec : Charge_fit.spec;
  fit : Charge_fit.fit_result;
  solver : Scv_solver.t;
  kt_ev : float;
  current_scale : float; (* 2 q k T / (pi hbar), Amperes *)
}

let make ?(polarity = N_type) ?(spec = Charge_fit.model2_spec)
    ?(optimise = false) ?theory device =
  Obs.span "cnt_model.make" @@ fun () ->
  Obs.incr c_fits;
  let profile = Device.charge_profile device in
  let spec, fit =
    if optimise then begin
      let refined, fit, _ = Charge_fit.optimise_boundaries profile spec in
      (refined, fit)
    end
    else (spec, Charge_fit.fit ?theory profile spec)
  in
  let solver =
    Scv_solver.create ~qs:fit.Charge_fit.approx ~c_sigma:(Device.c_sigma device)
  in
  let temp = device.Device.temp in
  {
    device;
    polarity;
    spec;
    fit;
    solver;
    kt_ev = Fermi.kt_ev temp;
    current_scale =
      2.0 *. Constants.elementary_charge *. Constants.thermal_energy temp
      /. (Float.pi *. Constants.hbar);
  }

(* The paper's Model 1 (three pieces) on a device (default: the FETToy
   reference device). *)
(* Rebuild a model from previously fitted parts (deserialisation path):
   no fitting happens; the spec is reconstructed from the approximation
   so the accessors stay meaningful. *)
let of_parts ?(polarity = N_type) ?(charge_rms = nan) ~device ~approx () =
  let bounds = Piecewise.boundaries approx in
  let fermi = device.Device.fermi in
  let pieces = Piecewise.pieces approx in
  let spec =
    Charge_fit.spec
      ~offsets:(Array.map (fun b -> b -. fermi) bounds)
      ~degrees:
        (Array.init (Array.length bounds) (fun i ->
             max 1 (Polynomial.degree pieces.(i))))
      ()
  in
  let fit =
    {
      Charge_fit.approx;
      charge_rms;
      sample_xs = [||];
      sample_ys = [||];
    }
  in
  let solver = Scv_solver.create ~qs:approx ~c_sigma:(Device.c_sigma device) in
  let temp = device.Device.temp in
  {
    device;
    polarity;
    spec;
    fit;
    solver;
    kt_ev = Fermi.kt_ev temp;
    current_scale =
      2.0 *. Constants.elementary_charge *. Constants.thermal_energy temp
      /. (Float.pi *. Constants.hbar);
  }

let model1 ?polarity ?optimise ?(device = Device.default) () =
  make ?polarity ~spec:Charge_fit.model1_spec ?optimise device

(* The paper's Model 2 (four pieces). *)
let model2 ?polarity ?optimise ?(device = Device.default) () =
  make ?polarity ~spec:Charge_fit.model2_spec ?optimise device

let device t = t.device
let polarity t = t.polarity
let spec t = t.spec
let charge_approx t = t.fit.Charge_fit.approx
let charge_rms t = t.fit.Charge_fit.charge_rms
let solver t = t.solver

(* Map terminal voltages through the device polarity: a p-type device
   is the electron-hole mirror of the n-type one. *)
let oriented t ~vgs ~vds =
  match t.polarity with N_type -> (vgs, vds) | P_type -> (-.vgs, -.vds)

let solve_vsc t ~vgs ~vds =
  let vgs, vds = oriented t ~vgs ~vds in
  let qt = Device.terminal_charge t.device ~vgs ~vds in
  Scv_solver.solve t.solver ~qt ~vds

let solve_stats t ~vgs ~vds =
  let vgs, vds = oriented t ~vgs ~vds in
  let qt = Device.terminal_charge t.device ~vgs ~vds in
  Scv_solver.solve_stats t.solver ~qt ~vds

(* Drain current from a solved V_SC (paper eq. 14); sign follows the
   device polarity. *)
let ids t ~vgs ~vds =
  Obs.incr c_ids_evals;
  let ovgs, ovds = oriented t ~vgs ~vds in
  let qt = Device.terminal_charge t.device ~vgs:ovgs ~vds:ovds in
  let vsc = Scv_solver.solve t.solver ~qt ~vds:ovds in
  let eta_s = (t.device.Device.fermi -. vsc) /. t.kt_ev in
  let eta_d = eta_s -. (ovds /. t.kt_ev) in
  let i =
    t.current_scale
    *. (Fermi.integral_order0 eta_s -. Fermi.integral_order0 eta_d)
  in
  match t.polarity with N_type -> i | P_type -> -.i

(* Mobile charges at a bias point (for charge-conserving transient
   stamps): total tube charge and its split between source and drain
   (C/m). *)
let charges t ~vgs ~vds =
  let ovgs, ovds = oriented t ~vgs ~vds in
  let qt = Device.terminal_charge t.device ~vgs:ovgs ~vds:ovds in
  let vsc = Scv_solver.solve t.solver ~qt ~vds:ovds in
  let qs = Piecewise.eval (charge_approx t) vsc in
  let qd = Piecewise.eval (charge_approx t) (vsc +. ovds) in
  (vsc, qs, qd)

let output_family t ~vgs_list ~vds_points =
  List.map (fun vgs -> (vgs, Array.map (fun vds -> ids t ~vgs ~vds) vds_points)) vgs_list

let transfer t ~vds ~vgs_points = Array.map (fun vgs -> ids t ~vgs ~vds) vgs_points

(* Numerical transconductance and output conductance (central
   differences), for small-signal work. *)
let gm ?(dv = 1e-4) t ~vgs ~vds =
  (ids t ~vgs:(vgs +. dv) ~vds -. ids t ~vgs:(vgs -. dv) ~vds) /. (2.0 *. dv)

let gds ?(dv = 1e-4) t ~vgs ~vds =
  (ids t ~vgs ~vds:(vds +. dv) -. ids t ~vgs ~vds:(vds -. dv)) /. (2.0 *. dv)

let pp fmt t =
  Format.fprintf fmt "@[<v>%s model (%s, %d pieces, charge RMS %.3f%%)@ %a@]"
    (match t.polarity with N_type -> "n-type" | P_type -> "p-type")
    t.device.Device.name
    (Piecewise.piece_count (charge_approx t))
    (100.0 *. charge_rms t)
    Device.pp t.device
