(* Top-level circuit-ready CNFET model: a fitted piecewise charge
   approximation plus the closed-form self-consistent-voltage solver
   and the analytic drain-current expression (paper eq. 14).

   Construction performs the one-off numerical work (equilibrium
   density, charge-curve fit); evaluation afterwards involves no
   integration and no iteration, which is what makes the model >10^3
   faster than the reference. *)

open Cnt_numerics
open Cnt_physics
module Obs = Cnt_obs.Obs

let c_ids_evals = Obs.counter "cnt_model.ids_evals"
let c_fits = Obs.counter "cnt_model.fits"
let c_batch_evals = Obs.counter "cnt_model.batch_evals"

type polarity =
  | N_type
  | P_type

type t = {
  device : Device.t;
  polarity : polarity;
  spec : Charge_fit.spec;
  fit : Charge_fit.fit_result;
  solver : Scv_solver.t;
  kt_ev : float;
  current_scale : float; (* 2 q k T / (pi hbar), Amperes *)
  identity : string;
  mutable cache : Eval_cache.store;
      (* per-slot memo of (V_SC, I_DS) solves; disabled unless the
         ambient Eval_cache default or set_cache says otherwise *)
}

(* Canonical identity of a fitted model: polarity, the full device
   parameter set, and the fitted boundary offsets/degrees (which also
   separate Model 1 from Model 2 and optimised from stock boundaries).
   Floats print as hex so distinct parameter sets can never collide
   through rounding.  This string keys manifests, eval caches and the
   server-side deck caches — anything where two different models must
   never alias. *)
let identity_of ~polarity ~(device : Device.t) ~(spec : Charge_fit.spec) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (match polarity with N_type -> "pcm|n" | P_type -> "pcm|p");
  Printf.bprintf buf "|d=%h|tox=%h|kap=%h|T=%h|ef=%h|ag=%h|ad=%h|sb=%d"
    device.Device.diameter device.Device.oxide_thickness
    device.Device.dielectric device.Device.temp device.Device.fermi
    device.Device.alpha_g device.Device.alpha_d device.Device.subbands;
  Buffer.add_string buf "|off=";
  Array.iter (fun o -> Printf.bprintf buf "%h," o) spec.Charge_fit.offsets;
  Buffer.add_string buf "|deg=";
  Array.iter (fun d -> Printf.bprintf buf "%d," d) spec.Charge_fit.degrees;
  Buffer.contents buf

let make ?(polarity = N_type) ?(spec = Charge_fit.model2_spec)
    ?(optimise = false) ?theory device =
  Obs.span "cnt_model.make" @@ fun () ->
  Obs.incr c_fits;
  let profile = Device.charge_profile device in
  let spec, fit =
    if optimise then begin
      let refined, fit, _ = Charge_fit.optimise_boundaries profile spec in
      (refined, fit)
    end
    else (spec, Charge_fit.fit ?theory profile spec)
  in
  let solver =
    Scv_solver.create ~qs:fit.Charge_fit.approx ~c_sigma:(Device.c_sigma device)
  in
  let temp = device.Device.temp in
  let identity = identity_of ~polarity ~device ~spec in
  {
    device;
    polarity;
    spec;
    fit;
    solver;
    kt_ev = Fermi.kt_ev temp;
    current_scale =
      2.0 *. Constants.elementary_charge *. Constants.thermal_energy temp
      /. (Float.pi *. Constants.hbar);
    identity;
    cache = Eval_cache.create ~identity (Eval_cache.default_config ());
  }

(* The paper's Model 1 (three pieces) on a device (default: the FETToy
   reference device). *)
(* Rebuild a model from previously fitted parts (deserialisation path):
   no fitting happens; the spec is reconstructed from the approximation
   so the accessors stay meaningful. *)
let of_parts ?(polarity = N_type) ?(charge_rms = nan) ~device ~approx () =
  let bounds = Piecewise.boundaries approx in
  let fermi = device.Device.fermi in
  let pieces = Piecewise.pieces approx in
  let spec =
    Charge_fit.spec
      ~offsets:(Array.map (fun b -> b -. fermi) bounds)
      ~degrees:
        (Array.init (Array.length bounds) (fun i ->
             max 1 (Polynomial.degree pieces.(i))))
      ()
  in
  let fit =
    {
      Charge_fit.approx;
      charge_rms;
      sample_xs = [||];
      sample_ys = [||];
    }
  in
  let solver = Scv_solver.create ~qs:approx ~c_sigma:(Device.c_sigma device) in
  let temp = device.Device.temp in
  let identity = identity_of ~polarity ~device ~spec in
  {
    device;
    polarity;
    spec;
    fit;
    solver;
    kt_ev = Fermi.kt_ev temp;
    current_scale =
      2.0 *. Constants.elementary_charge *. Constants.thermal_energy temp
      /. (Float.pi *. Constants.hbar);
    identity;
    cache = Eval_cache.create ~identity (Eval_cache.default_config ());
  }

let model1 ?polarity ?optimise ?(device = Device.default) () =
  make ?polarity ~spec:Charge_fit.model1_spec ?optimise device

(* The paper's Model 2 (four pieces). *)
let model2 ?polarity ?optimise ?(device = Device.default) () =
  make ?polarity ~spec:Charge_fit.model2_spec ?optimise device

let device t = t.device
let polarity t = t.polarity
let spec t = t.spec
let identity t = t.identity
let charge_approx t = t.fit.Charge_fit.approx
let charge_rms t = t.fit.Charge_fit.charge_rms
let solver t = t.solver

let set_cache t cfg = t.cache <- Eval_cache.create ~identity:t.identity cfg
let cache_config t = Eval_cache.config t.cache
let cache_stats t = Eval_cache.stats t.cache

(* Map terminal voltages through the device polarity: a p-type device
   is the electron-hole mirror of the n-type one. *)
let oriented t ~vgs ~vds =
  match t.polarity with N_type -> (vgs, vds) | P_type -> (-.vgs, -.vds)

(* The full closed-form point solve on oriented voltages: (V_SC, I_DS)
   with the n-type current sign.  This is the unit of work the cache
   memoises — both values come out of the one solve, so a hit saves the
   breakpoint scan, the root extraction and both Fermi integrals. *)
let solve_point t ~vgs ~vds =
  let qt = Device.terminal_charge t.device ~vgs ~vds in
  let vsc = Scv_solver.solve t.solver ~qt ~vds in
  let eta_s = (t.device.Device.fermi -. vsc) /. t.kt_ev in
  let eta_d = eta_s -. (vds /. t.kt_ev) in
  let i =
    t.current_scale
    *. (Fermi.integral_order0 eta_s -. Fermi.integral_order0 eta_d)
  in
  (vsc, i)

let cached_point t ~ovgs ~ovds =
  Eval_cache.find_or_add t.cache ~vgs:ovgs ~vds:ovds (fun ~vgs ~vds ->
      solve_point t ~vgs ~vds)

let solve_vsc t ~vgs ~vds =
  let ovgs, ovds = oriented t ~vgs ~vds in
  if Eval_cache.enabled t.cache then fst (cached_point t ~ovgs ~ovds)
  else
    let qt = Device.terminal_charge t.device ~vgs:ovgs ~vds:ovds in
    Scv_solver.solve t.solver ~qt ~vds:ovds

let solve_stats t ~vgs ~vds =
  let vgs, vds = oriented t ~vgs ~vds in
  let qt = Device.terminal_charge t.device ~vgs ~vds in
  Scv_solver.solve_stats t.solver ~qt ~vds

(* Drain current from a solved V_SC (paper eq. 14); sign follows the
   device polarity. *)
let ids t ~vgs ~vds =
  Obs.incr c_ids_evals;
  let ovgs, ovds = oriented t ~vgs ~vds in
  let i = snd (cached_point t ~ovgs ~ovds) in
  match t.polarity with N_type -> i | P_type -> -.i

(* Mobile charges at a bias point (for charge-conserving transient
   stamps): total tube charge and its split between source and drain
   (C/m). *)
let charges t ~vgs ~vds =
  let ovgs, ovds = oriented t ~vgs ~vds in
  let vsc =
    if Eval_cache.enabled t.cache then fst (cached_point t ~ovgs ~ovds)
    else
      let qt = Device.terminal_charge t.device ~vgs:ovgs ~vds:ovds in
      Scv_solver.solve t.solver ~qt ~vds:ovds
  in
  let qs = Piecewise.eval (charge_approx t) vsc in
  let qd = Piecewise.eval (charge_approx t) (vsc +. ovds) in
  (vsc, qs, qd)

(* -------------------------------------------------------------- *)
(* Batched kernel                                                 *)
(* -------------------------------------------------------------- *)

type grid = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

(* One drain column evaluated through a hoisted Scv_solver plan.  The
   plan is built at the quantised drain bias, so cached and plan-only
   evaluations agree; the per-point program below is the same
   floating-point program as [solve_point] with [Scv_solver.solve]
   replaced by the bitwise-equal [solve_plan]. *)
let eval_batch t ~vgs ~vds =
  Obs.span "cnt_model.eval_batch" @@ fun () ->
  let ni = Array.length vgs and nj = Array.length vds in
  let out = Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout ni nj in
  let use_cache = Eval_cache.enabled t.cache in
  let sign = match t.polarity with N_type -> 1.0 | P_type -> -1.0 in
  for j = 0 to nj - 1 do
    let _, ovds = oriented t ~vgs:0.0 ~vds:vds.(j) in
    let qvds = Eval_cache.quantise t.cache ovds in
    let plan = Scv_solver.plan t.solver ~vds:qvds in
    let compute ~vgs ~vds =
      let qt = Device.terminal_charge t.device ~vgs ~vds in
      let vsc = Scv_solver.solve_plan plan ~qt in
      let eta_s = (t.device.Device.fermi -. vsc) /. t.kt_ev in
      let eta_d = eta_s -. (vds /. t.kt_ev) in
      let i =
        t.current_scale
        *. (Fermi.integral_order0 eta_s -. Fermi.integral_order0 eta_d)
      in
      (vsc, i)
    in
    for i = 0 to ni - 1 do
      let ovgs, _ = oriented t ~vgs:vgs.(i) ~vds:0.0 in
      let ids =
        if use_cache then
          snd (Eval_cache.find_or_add t.cache ~vgs:ovgs ~vds:qvds compute)
        else snd (compute ~vgs:ovgs ~vds:qvds)
      in
      Bigarray.Array2.unsafe_set out i j (sign *. ids)
    done
  done;
  Obs.incr ~by:(ni * nj) c_ids_evals;
  Obs.incr c_batch_evals;
  out

let output_family t ~vgs_list ~vds_points =
  let vgs = Array.of_list vgs_list in
  let g = eval_batch t ~vgs ~vds:vds_points in
  List.mapi
    (fun i vg ->
      (vg, Array.init (Array.length vds_points) (fun j -> Bigarray.Array2.get g i j)))
    vgs_list

let transfer t ~vds ~vgs_points =
  let g = eval_batch t ~vgs:vgs_points ~vds:[| vds |] in
  Array.init (Array.length vgs_points) (fun i -> Bigarray.Array2.get g i 0)

(* Numerical transconductance and output conductance (central
   differences), for small-signal work. *)
let gm ?(dv = 1e-4) t ~vgs ~vds =
  (ids t ~vgs:(vgs +. dv) ~vds -. ids t ~vgs:(vgs -. dv) ~vds) /. (2.0 *. dv)

let gds ?(dv = 1e-4) t ~vgs ~vds =
  (ids t ~vgs ~vds:(vds +. dv) -. ids t ~vgs ~vds:(vds -. dv)) /. (2.0 *. dv)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The three reusable solver plans behind one stencil evaluation (bias
   point, vds + dv, vds - dv).  One workspace serves one domain at a
   time: assembly code keeps a workspace per device per cloned system,
   never sharing across concurrently-solving clones. *)
type stencil_ws = {
  sw0 : Scv_solver.plan;
  swp : Scv_solver.plan;
  swm : Scv_solver.plan;
}

let stencil_ws t =
  {
    sw0 = Scv_solver.plan t.solver ~vds:0.0;
    swp = Scv_solver.plan t.solver ~vds:0.0;
    swm = Scv_solver.plan t.solver ~vds:0.0;
  }

(* The MNA stencil — [ids] at the bias point plus the four
   central-difference evaluations behind [gm]/[gds] — as one batched
   kernel writing slot [k] of three output columns.  The per-point
   program is [solve_point] with the gate/drain capacitances hoisted
   (they are pure per-device values, recomputed per call by
   [Device.terminal_charge]) and [Scv_solver.solve] replaced by the
   bitwise-equal [solve_plan]; the three solver plans (vds, vds+dv,
   vds-dv) are built at the cache-quantised drain bias exactly as
   [eval_batch] does, so the cache composes identically in both
   directions: batched assembly populates and hits the same per-slot
   store as scalar assembly, key for key.

   [fault_i0] reproduces the scalar assembly's [Fault.Nan_eval] site:
   the bias-point current becomes NaN {e without} evaluating the model
   there (no counter tick, no cache insertion), while the four
   derivative points still evaluate — [Fault.fires] is stateless, so
   hoisting the decision out of the assembly loop cannot change it. *)
let eval_stencil ?(dv = 1e-4) ?ws t ~fault_i0 ~vgs ~vds ~i0 ~gm ~gds ~k =
  let use_cache = Eval_cache.enabled t.cache in
  let cg = Device.c_gate t.device and cd = Device.c_drain t.device in
  let fermi = t.device.Device.fermi in
  let kt = t.kt_ev and scale = t.current_scale in
  let point plan ~ovgs ~qvds =
    Obs.incr c_ids_evals;
    let i =
      if use_cache then
        let compute ~vgs ~vds =
          let qt = (cg *. vgs) +. (cd *. vds) in
          let vsc = Scv_solver.solve_plan plan ~qt in
          let eta_s = (fermi -. vsc) /. kt in
          let eta_d = eta_s -. (vds /. kt) in
          ( vsc,
            scale
            *. (Fermi.integral_order0 eta_s -. Fermi.integral_order0 eta_d) )
        in
        snd (Eval_cache.find_or_add t.cache ~vgs:ovgs ~vds:qvds compute)
      else begin
        (* the cache closure's program, inlined so the uncached hot
           path allocates neither the closure nor its result pair *)
        let qt = (cg *. ovgs) +. (cd *. qvds) in
        let vsc = Scv_solver.solve_plan plan ~qt in
        let eta_s = (fermi -. vsc) /. kt in
        let eta_d = eta_s -. (qvds /. kt) in
        scale *. (Fermi.integral_order0 eta_s -. Fermi.integral_order0 eta_d)
      end
    in
    match t.polarity with N_type -> i | P_type -> -.i
  in
  (* [oriented] without its tuple: the sign flip is the same [-.] the
     tuple form applies *)
  let flip = match t.polarity with N_type -> false | P_type -> true in
  let ori v = if flip then -.v else v in
  let ovgs0 = ori vgs and ovds0 = ori vds in
  let q0 = Eval_cache.quantise t.cache ovds0 in
  let plan0 =
    match ws with
    | Some w ->
        Scv_solver.replan w.sw0 ~vds:q0;
        w.sw0
    | None -> Scv_solver.plan t.solver ~vds:q0
  in
  let i0v = if fault_i0 then Float.nan else point plan0 ~ovgs:ovgs0 ~qvds:q0 in
  let ovgs_p = ori (vgs +. dv) in
  let ovgs_m = ori (vgs -. dv) in
  let gmv =
    (point plan0 ~ovgs:ovgs_p ~qvds:q0 -. point plan0 ~ovgs:ovgs_m ~qvds:q0)
    /. (2.0 *. dv)
  in
  let ovds_p = ori (vds +. dv) in
  let ovds_m = ori (vds -. dv) in
  let qp = Eval_cache.quantise t.cache ovds_p in
  let qm = Eval_cache.quantise t.cache ovds_m in
  let plan_p =
    match ws with
    | Some w ->
        Scv_solver.replan w.swp ~vds:qp;
        w.swp
    | None -> Scv_solver.plan t.solver ~vds:qp
  in
  let plan_m =
    match ws with
    | Some w ->
        Scv_solver.replan w.swm ~vds:qm;
        w.swm
    | None -> Scv_solver.plan t.solver ~vds:qm
  in
  let gdsv =
    (point plan_p ~ovgs:ovgs0 ~qvds:qp -. point plan_m ~ovgs:ovgs0 ~qvds:qm)
    /. (2.0 *. dv)
  in
  Bigarray.Array1.unsafe_set i0 k i0v;
  Bigarray.Array1.unsafe_set gm k gmv;
  Bigarray.Array1.unsafe_set gds k gdsv

let pp fmt t =
  Format.fprintf fmt "@[<v>%s model (%s, %d pieces, charge RMS %.3f%%)@ %a@]"
    (match t.polarity with N_type -> "n-type" | P_type -> "p-type")
    t.device.Device.name
    (Piecewise.piece_count (charge_approx t))
    (100.0 *. charge_rms t)
    Device.pp t.device
