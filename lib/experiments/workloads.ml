(* Shared workload definitions: the bias grids and model builders every
   experiment draws from, so tables and figures agree on parameters. *)

open Cnt_numerics
open Cnt_physics
open Cnt_core

(* The paper's output-characteristic sweep: V_DS from 0 to 0.6 V. *)
let vds_points = Grid.linspace 0.0 0.6 61

(* Gate voltages of figures 6 and 7 (0.3..0.6 in 0.05 steps). *)
let family_vgs = [ 0.3; 0.35; 0.4; 0.45; 0.5; 0.55; 0.6 ]

(* Gate voltages of the RMS tables (0.1..0.6 in 0.1 steps). *)
let table_vgs = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ]

(* Condition grids of tables II-IV. *)
let table_temps = [ 150.0; 300.0; 450.0 ]
let table_fermis = [ -0.32; -0.5; 0.0 ]

type models = {
  device : Device.t;
  reference : Fettoy.t;
  model1 : Cnt_model.t;
  model2 : Cnt_model.t;
}

(* Build the reference and both piecewise models for one operating
   condition.  [tuned] (default) refines the boundary offsets per
   condition against the reference current — the paper's numerically
   optimised boundary placement; untuned uses the central-condition
   offsets as-is. *)
let build ?(tuned = true) device =
  let reference = Fettoy.create device in
  let make spec =
    if tuned then begin
      let _, model, _ = Model_tuning.optimise_for_current device spec in
      model
    end
    else Cnt_model.make ~spec device
  in
  {
    device;
    reference;
    model1 = make Charge_fit.model1_spec;
    model2 = make Charge_fit.model2_spec;
  }

(* Memoised per-condition model construction.  Rms_tables and Repro
   both walk the full (temperature, Fermi) corner grid, and the tuned
   build (Model_tuning.optimise_for_current) is by far the most
   expensive step — previously redone identically by every caller.
   Per-key cells let distinct conditions build concurrently from pool
   workers while a second request for the same key blocks on its cell
   until the first finishes.  (Lazy would not be domain-safe here.) *)
type condition_cell = {
  cell_mutex : Mutex.t;
  mutable cell_models : models option;
}

let condition_tbl : (bool * float * float, condition_cell) Hashtbl.t =
  Hashtbl.create 16

let condition_tbl_mutex = Mutex.create ()

let condition ?(tuned = true) ~temp ~fermi () =
  let key = (tuned, temp, fermi) in
  let cell =
    Mutex.protect condition_tbl_mutex (fun () ->
        match Hashtbl.find_opt condition_tbl key with
        | Some c -> c
        | None ->
            let c = { cell_mutex = Mutex.create (); cell_models = None } in
            Hashtbl.add condition_tbl key c;
            c)
  in
  Mutex.protect cell.cell_mutex (fun () ->
      match cell.cell_models with
      | Some m -> m
      | None ->
          let m = build ~tuned (Device.create ~temp ~fermi ()) in
          cell.cell_models <- Some m;
          m)

(* Reference and model characteristics over a V_DS sweep at one gate
   voltage. *)
let reference_curve m ~vgs =
  Array.map (fun vds -> Fettoy.ids m.reference ~vgs ~vds) vds_points

let model_curve model ~vgs =
  let g = Cnt_model.eval_batch model ~vgs:[| vgs |] ~vds:vds_points in
  Array.init (Array.length vds_points) (fun j -> Bigarray.Array2.get g 0 j)

(* The paper's table-I workload: one full family of output
   characteristics (7 gate curves x 61 drain points = 427 bias
   points). *)
let family_size = List.length family_vgs * Array.length vds_points

let reference_family m =
  Fettoy.output_family m.reference ~vgs_list:family_vgs ~vds_points

let model_family model =
  Cnt_model.output_family model ~vgs_list:family_vgs ~vds_points
