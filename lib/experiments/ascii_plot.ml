(* Minimal ASCII line plots for rendering the paper's figures in a
   terminal.  Several series share one canvas; each series gets its own
   marker character. *)

type series = {
  label : string;
  marker : char;
  xs : float array;
  ys : float array;
}

let series ?(marker = '*') ~label xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Ascii_plot.series: length mismatch";
  { label; marker; xs; ys }

let default_markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '~' |]

let nice_bounds lo hi =
  if lo = hi then (lo -. 1.0, hi +. 1.0) else (lo, hi)

let render ?(width = 72) ?(height = 24) ?(title = "") ss =
  if ss = [] then invalid_arg "Ascii_plot.render: no series";
  let all_x = Array.concat (List.map (fun s -> s.xs) ss) in
  let all_y = Array.concat (List.map (fun s -> s.ys) ss) in
  if Array.length all_x = 0 then invalid_arg "Ascii_plot.render: empty series";
  let xmin, xmax =
    nice_bounds
      (Array.fold_left Float.min all_x.(0) all_x)
      (Array.fold_left Float.max all_x.(0) all_x)
  in
  let ymin, ymax =
    nice_bounds
      (Array.fold_left Float.min all_y.(0) all_y)
      (Array.fold_left Float.max all_y.(0) all_y)
  in
  let grid = Array.make_matrix height width ' ' in
  let col_of x =
    int_of_float (Float.round ((x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1)))
  in
  let row_of y =
    (height - 1)
    - int_of_float
        (Float.round ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1)))
  in
  List.iter
    (fun s ->
      Array.iteri
        (fun i x ->
          let c = col_of x and r = row_of s.ys.(i) in
          if c >= 0 && c < width && r >= 0 && r < height then grid.(r).(c) <- s.marker)
        s.xs)
    ss;
  let buf = Buffer.create (height * (width + 16)) in
  if title <> "" then Buffer.add_string buf (title ^ "\n");
  Array.iteri
    (fun r line ->
      (* y-axis label on the top, middle and bottom rows *)
      let label =
        if r = 0 then Printf.sprintf "%10.3g |" ymax
        else if r = height - 1 then Printf.sprintf "%10.3g |" ymin
        else if r = height / 2 then Printf.sprintf "%10.3g |" (0.5 *. (ymin +. ymax))
        else Printf.sprintf "%10s |" ""
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%10s  %-10.3g%*s%10.3g\n" "" xmin (width - 20) "" xmax);
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "%12s = %s\n" (String.make 1 s.marker) s.label))
    ss;
  Buffer.contents buf

let print ?width ?height ?title ss =
  print_string (render ?width ?height ?title ss)

(* Horizontal-bar histogram of raw samples: equal-width bins over the
   data range, one row per bin with the bar scaled to the most
   populated bin.  Used to render telemetry latency distributions. *)
let histogram ?(width = 40) ?(bins = 12) ?(title = "") values =
  if bins < 1 then invalid_arg "Ascii_plot.histogram: bins must be positive";
  let n = Array.length values in
  let buf = Buffer.create 512 in
  if title <> "" then Buffer.add_string buf (title ^ "\n");
  if n = 0 then begin
    Buffer.add_string buf "  (no samples)\n";
    Buffer.contents buf
  end
  else begin
    let lo = Array.fold_left Float.min values.(0) values in
    let hi = Array.fold_left Float.max values.(0) values in
    (* a constant sample set still gets one non-degenerate bin *)
    let lo, hi = if lo = hi then (lo, lo +. Float.max 1e-12 (Float.abs lo *. 1e-9)) else (lo, hi) in
    let bins = if n = 1 then 1 else bins in
    let counts = Array.make bins 0 in
    Array.iter
      (fun v ->
        let k =
          int_of_float (float_of_int bins *. (v -. lo) /. (hi -. lo))
        in
        let k = max 0 (min (bins - 1) k) in
        counts.(k) <- counts.(k) + 1)
      values;
    let peak = Array.fold_left max 1 counts in
    Array.iteri
      (fun k c ->
        let b_lo = lo +. (float_of_int k *. (hi -. lo) /. float_of_int bins) in
        let b_hi = lo +. (float_of_int (k + 1) *. (hi -. lo) /. float_of_int bins) in
        let bar = c * width / peak in
        Buffer.add_string buf
          (Printf.sprintf "  %10.3g .. %10.3g |%-*s %d\n" b_lo b_hi width
             (String.make bar '#') c))
      counts;
    Buffer.contents buf
  end

let print_histogram ?width ?bins ?title values =
  print_string (histogram ?width ?bins ?title values)
