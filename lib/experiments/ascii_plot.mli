(** Minimal multi-series ASCII line plots used to render the paper's
    figures in a terminal. *)

type series

val series : ?marker:char -> label:string -> float array -> float array -> series

val default_markers : char array

val render :
  ?width:int -> ?height:int -> ?title:string -> series list -> string
(** Render series onto a shared canvas with axis extents and a legend. *)

val print : ?width:int -> ?height:int -> ?title:string -> series list -> unit

val histogram :
  ?width:int -> ?bins:int -> ?title:string -> float array -> string
(** Horizontal-bar histogram of raw samples: equal-width bins over the
    data range, bars scaled to the most populated bin.  An empty array
    renders as ["(no samples)"].  Raises [Invalid_argument] when
    [bins < 1]. *)

val print_histogram :
  ?width:int -> ?bins:int -> ?title:string -> float array -> unit
