(* Process-variation study: Monte-Carlo sampling of device geometry
   (diameter and oxide thickness), refitting the piecewise model per
   sample, and summarising the on-current spread.

   This is the circuit-design use case the paper motivates — "large
   numbers of such devices" — where per-device model construction cost
   matters as much as evaluation cost: a fit takes milliseconds, so a
   thousand-device variation run is practical where the reference model
   would need hours.

   Sampling is deterministic (SplitMix64) and {e per-sample}: sample i
   draws from its own [Prng.stream] derived purely from the seed and i,
   so the sampled geometries — and hence the whole spread — are
   byte-identical whether the samples are evaluated sequentially or
   fanned out over any number of domains in any order. *)

open Cnt_numerics
open Cnt_physics
open Cnt_core

type spread = {
  nominal : float; (* A *)
  mean : float;
  sigma : float;
  minimum : float;
  maximum : float;
  samples : float array;
}

type config = {
  diameter_sigma : float; (* relative, e.g. 0.05 = 5 % *)
  tox_sigma : float; (* relative *)
  count : int;
  seed : int64;
  vgs : float;
  vds : float;
}

let default_config =
  {
    diameter_sigma = 0.05;
    tox_sigma = 0.05;
    count = 200;
    seed = 42L;
    vgs = 0.6;
    vds = 0.6;
  }

(* One sampled device around the nominal geometry; distributions are
   truncated at +-3 sigma to exclude unphysical geometries. *)
let sample_device rng config nominal =
  let truncated sigma =
    let rec go () =
      let x = Prng.gaussian ~sigma rng in
      if Float.abs x <= 3.0 *. sigma then x else go ()
    in
    if sigma = 0.0 then 0.0 else go ()
  in
  let d_scale = 1.0 +. truncated config.diameter_sigma in
  let t_scale = 1.0 +. truncated config.tox_sigma in
  Device.create
    ~name:nominal.Device.name
    ~diameter:(nominal.Device.diameter *. d_scale)
    ~oxide_thickness:(nominal.Device.oxide_thickness *. t_scale)
    ~dielectric:nominal.Device.dielectric ~temp:nominal.Device.temp
    ~fermi:nominal.Device.fermi ~alpha_g:nominal.Device.alpha_g
    ~alpha_d:nominal.Device.alpha_d ~subbands:nominal.Device.subbands ()

let run ?(config = default_config) ?(nominal = Device.default) ?jobs () =
  let module Pool = Cnt_par.Pool in
  let module Progress = Cnt_obs.Progress in
  if config.count < 2 then invalid_arg "Variation.run: need at least 2 samples";
  if Progress.on () then
    Progress.emit
      (Progress.Analysis_start
         { analysis = "mc"; label = Printf.sprintf "variation %d" config.count });
  let progress_done = Atomic.make 0 in
  let base = Prng.create ~seed:config.seed () in
  let on_current device =
    let model = Cnt_model.make ~spec:Charge_fit.model2_spec device in
    Cnt_model.ids model ~vgs:config.vgs ~vds:config.vds
  in
  let nominal_current = on_current nominal in
  let jobs =
    if Pool.in_task () then 1
    else match jobs with Some j -> j | None -> Pool.default_jobs ()
  in
  let indices = Array.init config.count Fun.id in
  let samples =
    Pool.with_pool ~jobs (fun pool ->
        Pool.parallel_map pool
          (fun i ->
            (* stream i depends only on (seed, i): any schedule, any
               job count, same draws *)
            let rng = Prng.stream base i in
            let ids = on_current (sample_device rng config nominal) in
            if Progress.on () then
              Progress.emit
                (Progress.Sample
                   {
                     label = "variation";
                     i = 1 + Atomic.fetch_and_add progress_done 1;
                     n = config.count;
                   });
            ids)
          indices)
  in
  if Progress.on () then
    Progress.emit
      (Progress.Analysis_finish
         {
           analysis = "mc";
           label = Printf.sprintf "variation %d" config.count;
           points = config.count;
         });
  {
    nominal = nominal_current;
    mean = Stats.mean samples;
    sigma = Stats.stddev samples;
    minimum = Stats.minimum samples;
    maximum = Stats.maximum samples;
    samples;
  }

let to_string s =
  Printf.sprintf
    "On-current spread over %d Monte-Carlo samples\n\
    \  nominal  %.4g A\n\
    \  mean     %.4g A\n\
    \  sigma    %.4g A (%.1f%% of mean)\n\
    \  min/max  %.4g / %.4g A\n"
    (Array.length s.samples) s.nominal s.mean s.sigma
    (100.0 *. s.sigma /. s.mean)
    s.minimum s.maximum

let to_csv s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "sample,ids_a\n";
  Array.iteri
    (fun i x -> Buffer.add_string buf (Printf.sprintf "%d,%.9g\n" i x))
    s.samples;
  Buffer.contents buf
