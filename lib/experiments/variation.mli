(** Deterministic Monte-Carlo process-variation study: sample device
    geometry, refit the piecewise model per sample (milliseconds each —
    the use case the paper's speed-up enables), and summarise the
    on-current spread. *)

open Cnt_physics

type spread = {
  nominal : float;
  mean : float;
  sigma : float;
  minimum : float;
  maximum : float;
  samples : float array;
}

type config = {
  diameter_sigma : float;  (** relative sigma of the tube diameter *)
  tox_sigma : float;  (** relative sigma of the oxide thickness *)
  count : int;
  seed : int64;
  vgs : float;
  vds : float;
}

val default_config : config
(** 5 % diameter and oxide sigma, 200 samples, bias (0.6, 0.6). *)

val run : ?config:config -> ?nominal:Device.t -> ?jobs:int -> unit -> spread
(** Run the study.  Sample [i] draws from [Prng.stream seed i], so the
    result is byte-identical at any [jobs] (default
    [Cnt_par.Pool.default_jobs]: [CNT_JOBS] or 1); extra domains only
    change wall-clock time. *)

val to_string : spread -> string
val to_csv : spread -> string
