(** Tables II-IV: average RMS drain-current error of both piecewise
    models against the reference across the (V_G, T) grid, one table
    per Fermi level. *)

type cell = {
  vgs : float;
  temp : float;
  model1_error : float;  (** relative RMS error, as a fraction *)
  model2_error : float;
}

type table = {
  fermi : float;
  cells : cell list;
}

val errors_for : Workloads.models -> vgs:float -> float * float
(** [(model1_error, model2_error)] for one gate voltage. *)

val compute :
  ?tuned:bool ->
  ?temps:float list ->
  ?vgs_list:float list ->
  ?jobs:int ->
  float ->
  table
(** Compute the table for one Fermi level (eV).  Per-temperature
    condition building and per-cell error evaluation fan out over
    [jobs] domains (default [Cnt_par.Pool.default_jobs]); the table is
    identical at any job count. *)

val cell : table -> vgs:float -> temp:float -> cell option

val to_string : table -> string
(** Paper-layout rendering (percentages). *)

val to_csv : table -> string

val worst_error : table -> [ `Model1 | `Model2 ] -> float
val mean_error : table -> [ `Model1 | `Model2 ] -> float
