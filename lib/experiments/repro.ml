(* Orchestration: run any table or figure of the paper by name, print
   it, and archive the CSV under results/. *)

type artefact = {
  name : string;
  text : string; (* human-readable rendering *)
  csv : string;
}

let experiment_ids =
  [
    "table1"; "table2"; "table3"; "table4"; "table5"; "fig2"; "fig3"; "fig4";
    "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
    (* beyond-the-paper ablations and studies *)
    "ablation_boundaries"; "ablation_pieces"; "ablation_weighting";
    "ablation_tail"; "variation";
  ]

let figure_artefact fig =
  {
    name = fig.Figures.id;
    text = Figures.to_ascii fig;
    csv = Figures.to_csv fig;
  }

(* Shared expensive state, built once per process on demand. *)
let central_models = lazy (Workloads.condition ~temp:300.0 ~fermi:(-0.32) ())
let experimental_result = lazy (Experimental.run ())

(* Experiments parallelise *inside* each id (Rms_tables / Variation fan
   out over their own pools), never across ids: the shared lazies above
   must not be forced from two domains at once. *)
let run ?jobs id =
  match id with
  | "table1" ->
      let r = Timing.measure (Lazy.force central_models) in
      { name = "table1"; text = Timing.to_string r; csv = Timing.to_csv r }
  | "table2" ->
      let t = Rms_tables.compute ?jobs (-0.32) in
      { name = "table2"; text = Rms_tables.to_string t; csv = Rms_tables.to_csv t }
  | "table3" ->
      let t = Rms_tables.compute ?jobs (-0.5) in
      { name = "table3"; text = Rms_tables.to_string t; csv = Rms_tables.to_csv t }
  | "table4" ->
      let t = Rms_tables.compute ?jobs 0.0 in
      { name = "table4"; text = Rms_tables.to_string t; csv = Rms_tables.to_csv t }
  | "table5" ->
      let rows = Experimental.table () in
      {
        name = "table5";
        text = Experimental.table_to_string rows;
        csv = Experimental.table_to_csv rows;
      }
  | "fig2" -> figure_artefact (Figures.fig2 ~models:(Lazy.force central_models) ())
  | "fig3" -> figure_artefact (Figures.fig3 ~models:(Lazy.force central_models) ())
  | "fig4" -> figure_artefact (Figures.fig4 ~models:(Lazy.force central_models) ())
  | "fig5" -> figure_artefact (Figures.fig5 ~models:(Lazy.force central_models) ())
  | "fig6" -> figure_artefact (Figures.fig6 ~models:(Lazy.force central_models) ())
  | "fig7" -> figure_artefact (Figures.fig7 ~models:(Lazy.force central_models) ())
  | "fig8" -> figure_artefact (Figures.fig8 ())
  | "fig9" -> figure_artefact (Figures.fig9 ())
  | "fig10" -> figure_artefact (Figures.fig10 ~result:(Lazy.force experimental_result) ())
  | "fig11" -> figure_artefact (Figures.fig11 ~result:(Lazy.force experimental_result) ())
  | "ablation_boundaries" ->
      let rows = Ablations.boundary_ablation () in
      {
        name = "ablation_boundaries";
        text = Ablations.to_string ~title:"Boundary placement ablation" rows;
        csv = Ablations.to_csv rows;
      }
  | "ablation_pieces" ->
      let rows = Ablations.piece_count_ablation () in
      {
        name = "ablation_pieces";
        text = Ablations.to_string ~title:"Piece-count ablation (current-tuned)" rows;
        csv = Ablations.to_csv rows;
      }
  | "ablation_weighting" ->
      let rows = Ablations.weighting_ablation () in
      {
        name = "ablation_weighting";
        text = Ablations.to_string ~title:"Least-squares weighting ablation (Model 2)" rows;
        csv = Ablations.to_csv rows;
      }
  | "ablation_tail" ->
      let rows = Ablations.tail_ablation () in
      {
        name = "ablation_tail";
        text = Ablations.to_string ~title:"Final-region policy ablation at EF = 0" rows;
        csv = Ablations.to_csv rows;
      }
  | "variation" ->
      let s = Variation.run ?jobs () in
      { name = "variation"; text = Variation.to_string s; csv = Variation.to_csv s }
  | other ->
      invalid_arg
        (Printf.sprintf "unknown experiment %S (known: %s)" other
           (String.concat ", " experiment_ids))

let save ?(dir = "results") artefact =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (artefact.name ^ ".csv") in
  let oc = open_out path in
  output_string oc artefact.csv;
  close_out oc;
  path

let run_all ?dir ?(ids = experiment_ids) ?jobs ~print () =
  List.map
    (fun id ->
      let artefact = run ?jobs id in
      if print then begin
        print_endline ("==== " ^ artefact.name ^ " ====");
        print_endline artefact.text
      end;
      let path = save ?dir artefact in
      (artefact, path))
    ids
