(* Tables II, III and IV: average RMS drain-current error of Model 1
   and Model 2 against the reference, per gate voltage, across
   temperatures, for each Fermi level. *)

open Cnt_numerics

type cell = {
  vgs : float;
  temp : float;
  model1_error : float; (* relative RMS, fraction *)
  model2_error : float;
}

type table = {
  fermi : float;
  cells : cell list; (* ordered by vgs major, temp minor *)
}

let errors_for models ~vgs =
  let reference = Workloads.reference_curve models ~vgs in
  let e m = Stats.relative_rms_error reference (Workloads.model_curve m ~vgs) in
  (e models.Workloads.model1, e models.Workloads.model2)

(* One table (fixed Fermi level) over the temperature x V_G grid.  Both
   stages are pure per element — condition building (FETToy reference +
   model fits, the expensive part) per temperature, then error cells per
   (V_G, T) pair — so each fans out over the pool with results landing
   by index; cell order stays vgs-major, temp-minor at any job count. *)
let compute ?(tuned = true) ?(temps = Workloads.table_temps)
    ?(vgs_list = Workloads.table_vgs) ?jobs fermi =
  let module Pool = Cnt_par.Pool in
  let jobs =
    if Pool.in_task () then 1
    else match jobs with Some j -> j | None -> Pool.default_jobs ()
  in
  Pool.with_pool ~jobs (fun pool ->
      let per_temp =
        Pool.parallel_map pool ~chunk:1
          (fun temp -> (temp, Workloads.condition ~tuned ~temp ~fermi ()))
          (Array.of_list temps)
      in
      let grid =
        Array.of_list
          (List.concat_map
             (fun vgs ->
               List.map (fun pt -> (vgs, pt)) (Array.to_list per_temp))
             vgs_list)
      in
      let cells =
        Pool.parallel_map pool
          (fun (vgs, (temp, models)) ->
            let e1, e2 = errors_for models ~vgs in
            { vgs; temp; model1_error = e1; model2_error = e2 })
          grid
      in
      { fermi; cells = Array.to_list cells })

let cell table ~vgs ~temp =
  List.find_opt
    (fun c -> Float.abs (c.vgs -. vgs) < 1e-9 && Float.abs (c.temp -. temp) < 1e-9)
    table.cells

(* Render in the paper's layout: rows = V_G, column pairs = (Model 1,
   Model 2) per temperature. *)
let to_string table =
  let temps =
    List.sort_uniq compare (List.map (fun c -> c.temp) table.cells)
  in
  let vgs_list =
    List.sort_uniq compare (List.map (fun c -> c.vgs) table.cells)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "Average RMS errors in IDS, EF = %g eV (percent)\n" table.fermi);
  Buffer.add_string buf (Printf.sprintf "%-8s" "VG[V]");
  List.iter
    (fun t -> Buffer.add_string buf (Printf.sprintf "%8.0fK-M1 %8.0fK-M2" t t))
    temps;
  Buffer.add_char buf '\n';
  List.iter
    (fun vgs ->
      Buffer.add_string buf (Printf.sprintf "%-8.1f" vgs);
      List.iter
        (fun temp ->
          match cell table ~vgs ~temp with
          | Some c ->
              Buffer.add_string buf
                (Printf.sprintf "%11.1f %11.1f" (100.0 *. c.model1_error)
                   (100.0 *. c.model2_error))
          | None -> Buffer.add_string buf (Printf.sprintf "%11s %11s" "-" "-"))
        temps;
      Buffer.add_char buf '\n')
    vgs_list;
  Buffer.contents buf

let to_csv table =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "fermi_ev,vgs_v,temp_k,model1_rms_pct,model2_rms_pct\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%g,%g,%g,%.4f,%.4f\n" table.fermi c.vgs c.temp
           (100.0 *. c.model1_error) (100.0 *. c.model2_error)))
    table.cells;
  Buffer.contents buf

(* Summary statistics used by EXPERIMENTS.md and the tests. *)
let worst_error table which =
  List.fold_left
    (fun acc c ->
      Float.max acc (match which with `Model1 -> c.model1_error | `Model2 -> c.model2_error))
    0.0 table.cells

let mean_error table which =
  let vals =
    List.map
      (fun c -> match which with `Model1 -> c.model1_error | `Model2 -> c.model2_error)
      table.cells
  in
  List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)
