(** Run any of the paper's tables and figures by name. *)

type artefact = {
  name : string;
  text : string;  (** human-readable rendering *)
  csv : string;
}

val experiment_ids : string list
(** All known ids: table1..table5, fig2..fig11, plus the
    beyond-the-paper studies (ablation_*, variation). *)

val run : ?jobs:int -> string -> artefact
(** Run one experiment.  [jobs] fans the parallelisable experiments
    (RMS tables, Monte-Carlo variation) out over that many domains
    with identical results (default [Cnt_par.Pool.default_jobs]).
    Raises [Invalid_argument] on unknown ids. *)

val save : ?dir:string -> artefact -> string
(** Write the CSV under [dir] (default "results"); returns the path. *)

val run_all :
  ?dir:string ->
  ?ids:string list ->
  ?jobs:int ->
  print:bool ->
  unit ->
  (artefact * string) list
(** Run a list of experiments (default all), optionally printing each
    rendering, saving every CSV.  Experiments run in sequence;
    parallelism happens inside each one (see {!run}). *)
