(** Shared bias grids and model builders used by every reproduction
    experiment. *)

open Cnt_physics
open Cnt_core

val vds_points : float array
(** V_DS sweep of the paper's characteristics: 0..0.6 V, 61 points. *)

val family_vgs : float list
(** Gate voltages of figures 6-7: 0.3..0.6 V in 0.05 V steps. *)

val table_vgs : float list
(** Gate voltages of tables II-IV: 0.1..0.6 V in 0.1 V steps. *)

val table_temps : float list
val table_fermis : float list

type models = {
  device : Device.t;
  reference : Fettoy.t;
  model1 : Cnt_model.t;
  model2 : Cnt_model.t;
}

val build : ?tuned:bool -> Device.t -> models
(** Reference plus both piecewise models for a device; [tuned]
    (default true) re-optimises boundary offsets per condition. *)

val condition : ?tuned:bool -> temp:float -> fermi:float -> unit -> models
(** {!build} on the paper's default device at a given temperature and
    Fermi level.  Memoised per [(tuned, temp, fermi)] — the corner
    grids of the RMS tables and the repro experiments share one fit per
    condition instead of redoing the boundary optimisation; safe to
    call concurrently from pool workers. *)

val reference_curve : models -> vgs:float -> float array

val model_curve : Cnt_model.t -> vgs:float -> float array
(** Model drain currents over {!vds_points}, evaluated through
    {!Cnt_model.eval_batch} (bitwise-equal to the scalar loop). *)

val family_size : int
(** Bias points in one table-I workload (7 x 61). *)

val reference_family : models -> (float * float array) list
val model_family : Cnt_model.t -> (float * float array) list
