(* Bench-regression differ.

     compare OLD.json NEW.json [--threshold 10] [--quiet]

   Compares two BENCH_*.json artefacts (any of the shapes bench/main.exe
   emits): both files are parsed with a minimal JSON reader, flattened
   to path -> number leaves, and every timing leaf — a key ending in
   [_s], where lower is better — present in both files is compared by
   relative change.  A slowdown beyond the threshold is a regression
   (exit 1); a speedup beyond it is reported as improved; everything
   else passes.  Non-timing leaves and keys present in only one file
   are listed as notes, never failures, so artefact-shape drift cannot
   break CI.

   Array elements flatten under their "workload" / "name" / "label"
   field when they have one, so reordering results between runs does
   not misalign the diff. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader                                                 *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json text =
  let pos = ref 0 in
  let n = String.length text in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "bad literal (wanted %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* sufficient for the ASCII artefacts bench emits *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
          | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

(* ------------------------------------------------------------------ *)
(* Flattening                                                          *)
(* ------------------------------------------------------------------ *)

(* Array elements key by their identifying field when present so that
   result reordering between runs cannot misalign the diff. *)
let element_key item i =
  let tagged =
    match item with
    | Obj fields ->
        List.find_map
          (fun k ->
            match List.assoc_opt k fields with
            | Some (Str s) -> Some s
            | _ -> None)
          [ "workload"; "name"; "label"; "id" ]
    | _ -> None
  in
  match tagged with Some s -> Printf.sprintf "[%s]" s | None -> Printf.sprintf "[%d]" i

let flatten json =
  let out = ref [] in
  let rec go prefix = function
    | Num v -> out := (prefix, v) :: !out
    | Obj fields ->
        List.iter
          (fun (k, v) ->
            go (if prefix = "" then k else prefix ^ "." ^ k) v)
          fields
    | Arr items ->
        List.iteri (fun i item -> go (prefix ^ element_key item i) item) items
    | Null | Bool _ | Str _ -> ()
  in
  go "" json;
  List.rev !out

let is_timing path =
  (* timing leaves end in _s; wall_s, disabled_s, total_s, ... *)
  let last_key i = match String.rindex_from_opt path i '.' with
    | Some j -> String.sub path (j + 1) (String.length path - j - 1)
    | None -> path
  in
  let key = last_key (String.length path - 1) in
  String.length key > 2 && String.sub key (String.length key - 2) 2 = "_s"

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let threshold = ref 10.0 in
  let quiet = ref false in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0.0 -> threshold := t
        | _ ->
            prerr_endline "compare: --threshold needs a positive percentage";
            exit 2);
        parse_args rest
    | "--quiet" :: rest ->
        quiet := true;
        parse_args rest
    | f :: rest ->
        files := f :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !files with
    | [ o; n ] -> (o, n)
    | _ ->
        prerr_endline
          "usage: compare OLD.json NEW.json [--threshold PCT] [--quiet]";
        exit 2
  in
  (* A missing baseline is the normal first-run state (CI caches start
     empty): note it and pass instead of failing the pipeline.  A
     missing NEW file is still an error — the bench that was supposed
     to produce it did not run. *)
  if not (Sys.file_exists old_path) then begin
    Printf.printf
      "bench-diff: no baseline %s (first run?) — nothing to compare, pass\n"
      old_path;
    exit 0
  end;
  let load path =
    match parse_json (read_file path) with
    | j -> flatten j
    | exception Sys_error msg ->
        prerr_endline ("compare: " ^ msg);
        exit 2
    | exception Parse_error msg ->
        prerr_endline (Printf.sprintf "compare: %s: %s" path msg);
        exit 2
  in
  let old_leaves = load old_path and new_leaves = load new_path in
  let regressions = ref 0 and improved = ref 0 and passed = ref 0 in
  let missing = ref 0 in
  Printf.printf "bench-diff: %s -> %s (threshold %.0f%%)\n" old_path new_path
    !threshold;
  Printf.printf "%-60s %12s %12s %9s  %s\n" "timing" "old_s" "new_s" "change"
    "verdict";
  List.iter
    (fun (path, old_v) ->
      if is_timing path then
        match List.assoc_opt path new_leaves with
        | None -> incr missing
        | Some new_v ->
            let change =
              if old_v > 0.0 then 100.0 *. (new_v -. old_v) /. old_v
              else 0.0
            in
            let verdict =
              if change > !threshold then begin
                incr regressions;
                "REGRESSED"
              end
              else if change < -. !threshold then begin
                incr improved;
                "improved"
              end
              else begin
                incr passed;
                "pass"
              end
            in
            if (not !quiet) || verdict = "REGRESSED" then
              Printf.printf "%-60s %12.6g %12.6g %+8.1f%%  %s\n" path old_v
                new_v change verdict)
    old_leaves;
  let new_only =
    List.length
      (List.filter
         (fun (p, _) -> is_timing p && not (List.mem_assoc p old_leaves))
         new_leaves)
  in
  if !missing > 0 || new_only > 0 then
    Printf.printf
      "note: %d timing(s) only in %s, %d only in %s (shape drift, not failures)\n"
      !missing old_path new_only new_path;
  Printf.printf "bench-diff: %d passed, %d improved, %d regressed\n" !passed
    !improved !regressions;
  exit (if !regressions > 0 then 1 else 0)
