(* Microbenchmarks for every table and figure of the paper (bechamel).

   Each group maps to one experiment:

     table1  - evaluation cost: reference vs Model 1 vs Model 2, per
               bias point and per characteristic family (the paper's
               CPU-time workload)
     table2  - accuracy-table workload at E_F = -0.32 eV (one V_DS
               sweep per model)
     table3  - same at E_F = -0.5 eV
     table4  - same at E_F = 0 eV
     table5  - synthetic-measurement generation and Javey-device model
               evaluation
     fig2/3  - one-off fitting cost of Model 1 / Model 2
     fig4/5  - charge-curve evaluation: theory integral vs piecewise
     fig6/7  - full output family generation, Model 1 / Model 2
     fig8/9  - Model 2 sweeps at the extreme conditions
     fig10/11- measured-curve generation for the comparison figures
     ablation- solver internals: closed-form V_SC solve vs bracketed
               Newton + quadrature, and the table-lookup variant

   Wall-clock totals for the paper's exact loop counts are produced by
   `repro table1` (bin/repro.ml); these microbenchmarks give the
   statistically robust per-call costs behind them. *)

open Bechamel
open Toolkit
open Cnt_physics
open Cnt_core

let device = Device.default
let reference = Fettoy.create device
let model1 = Cnt_model.model1 ()
let model2 = Cnt_model.model2 ()
let table_model = Table_model.make device

let vds_points = Cnt_experiments.Workloads.vds_points
let family_vgs = Cnt_experiments.Workloads.family_vgs

(* devices of the other table conditions *)
let cond_ef05 = Device.create ~fermi:(-0.5) ()
let model2_ef05 = Cnt_model.make ~spec:Charge_fit.model2_spec cond_ef05
let model1_ef05 = Cnt_model.make ~spec:Charge_fit.model1_spec cond_ef05
let cond_ef0 = Device.create ~fermi:0.0 ()
let model2_ef0 = Cnt_model.make ~spec:Charge_fit.model2_spec cond_ef0
let model1_ef0 = Cnt_model.make ~spec:Charge_fit.model1_spec cond_ef0
let cond_150_ef0 = Device.create ~temp:150.0 ~fermi:0.0 ()
let model2_150 = Cnt_model.make ~spec:Charge_fit.model2_spec cond_150_ef0
let cond_450_ef05 = Device.create ~temp:450.0 ~fermi:(-0.5) ()
let model2_450 = Cnt_model.make ~spec:Charge_fit.model2_spec cond_450_ef05

let javey = Device.javey
let javey_reference = Fettoy.create javey
let javey_model1 = Cnt_model.make ~spec:Charge_fit.model1_spec javey
let javey_model2 = Cnt_model.make ~spec:Charge_fit.model2_spec javey

let profile = Device.charge_profile device
let n0 = Charge.equilibrium profile

let sweep model vgs =
  Array.map (fun vds -> Cnt_model.ids model ~vgs ~vds) vds_points

let stage_unit f = Staged.stage (fun () -> ignore (f ()))

(* Table I: per-bias-point and per-family evaluation cost. *)
let table1 =
  Test.make_grouped ~name:"table1"
    [
      Test.make ~name:"reference_point"
        (stage_unit (fun () -> Fettoy.ids reference ~vgs:0.5 ~vds:0.3));
      Test.make ~name:"model1_point"
        (stage_unit (fun () -> Cnt_model.ids model1 ~vgs:0.5 ~vds:0.3));
      Test.make ~name:"model2_point"
        (stage_unit (fun () -> Cnt_model.ids model2 ~vgs:0.5 ~vds:0.3));
      Test.make ~name:"model1_family_7x61"
        (stage_unit (fun () ->
             Cnt_model.output_family model1 ~vgs_list:family_vgs ~vds_points));
      Test.make ~name:"model2_family_7x61"
        (stage_unit (fun () ->
             Cnt_model.output_family model2 ~vgs_list:family_vgs ~vds_points));
    ]

(* Tables II-IV: the accuracy-table sweep workload per condition. *)
let table_sweeps name m1 m2 =
  Test.make_grouped ~name
    [
      Test.make ~name:"model1_sweep_61pt" (stage_unit (fun () -> sweep m1 0.5));
      Test.make ~name:"model2_sweep_61pt" (stage_unit (fun () -> sweep m2 0.5));
    ]

let table2 = table_sweeps "table2_ef-0.32" model1 model2
let table3 = table_sweeps "table3_ef-0.5" model1_ef05 model2_ef05
let table4 = table_sweeps "table4_ef0" model1_ef0 model2_ef0

(* Table V / figs 10-11: synthetic measurement and Javey models. *)
let table5 =
  Test.make_grouped ~name:"table5_javey"
    [
      Test.make ~name:"synthetic_measurement_point"
        (stage_unit (fun () ->
             Cnt_experiments.Experimental.measure javey_reference ~vgs:0.4 ~vds:0.3));
      Test.make ~name:"javey_model1_point"
        (stage_unit (fun () -> Cnt_model.ids javey_model1 ~vgs:0.4 ~vds:0.3));
      Test.make ~name:"javey_model2_point"
        (stage_unit (fun () -> Cnt_model.ids javey_model2 ~vgs:0.4 ~vds:0.3));
    ]

(* Figs 2-3: one-off fitting cost (the price paid at model build). *)
let fig23 =
  Test.make_grouped ~name:"fig2_fig3_fitting"
    [
      Test.make ~name:"fit_model1"
        (stage_unit (fun () -> Charge_fit.fit profile Charge_fit.model1_spec));
      Test.make ~name:"fit_model2"
        (stage_unit (fun () -> Charge_fit.fit profile Charge_fit.model2_spec));
    ]

(* Figs 4-5: charge-curve evaluation, integral vs piecewise. *)
let fig45 =
  let approx1 = Cnt_model.charge_approx model1 in
  let approx2 = Cnt_model.charge_approx model2 in
  Test.make_grouped ~name:"fig4_fig5_charge"
    [
      Test.make ~name:"qs_theory_integral"
        (stage_unit (fun () -> Charge.qs ~n0 profile (-0.4)));
      Test.make ~name:"qs_model1_piecewise"
        (stage_unit (fun () -> Piecewise.eval approx1 (-0.4)));
      Test.make ~name:"qs_model2_piecewise"
        (stage_unit (fun () -> Piecewise.eval approx2 (-0.4)));
    ]

(* Figs 6-9: characteristic families at each figure's condition. *)
let fig69 =
  Test.make_grouped ~name:"fig6_to_fig9_families"
    [
      Test.make ~name:"fig6_model1_family"
        (stage_unit (fun () ->
             Cnt_model.output_family model1 ~vgs_list:family_vgs ~vds_points));
      Test.make ~name:"fig7_model2_family"
        (stage_unit (fun () ->
             Cnt_model.output_family model2 ~vgs_list:family_vgs ~vds_points));
      Test.make ~name:"fig8_model2_150K_ef0_sweep"
        (stage_unit (fun () -> sweep model2_150 0.4));
      Test.make ~name:"fig9_model2_450K_ef-0.5_sweep"
        (stage_unit (fun () -> sweep model2_450 0.5));
    ]

let fig1011 =
  Test.make_grouped ~name:"fig10_fig11_javey"
    [
      Test.make ~name:"measured_curve_41pt"
        (stage_unit (fun () ->
             Cnt_experiments.Experimental.measured_curve javey_reference ~vgs:0.4));
      Test.make ~name:"javey_model2_sweep_41pt"
        (stage_unit (fun () ->
             Array.map
               (fun vds -> Cnt_model.ids javey_model2 ~vgs:0.4 ~vds)
               Cnt_experiments.Experimental.vds_points));
    ]

(* Ablation: where the speed-up comes from. *)
let ablation =
  let solver = Cnt_model.solver model2 in
  let qt = Device.terminal_charge device ~vgs:0.5 ~vds:0.3 in
  Test.make_grouped ~name:"ablation_solver"
    [
      Test.make ~name:"closed_form_vsc_solve"
        (stage_unit (fun () -> Scv_solver.solve solver ~qt ~vds:0.3));
      Test.make ~name:"reference_newton_quadrature_vsc"
        (stage_unit (fun () -> Fettoy.solve_vsc reference ~vgs:0.5 ~vds:0.3));
      Test.make ~name:"table_lookup_point"
        (stage_unit (fun () -> Table_model.ids table_model ~vgs:0.5 ~vds:0.3));
      Test.make ~name:"ids_from_known_vsc"
        (stage_unit (fun () -> Fettoy.ids_of_vsc reference ~vds:0.3 (-0.34)));
    ]

(* Circuit-level cost with the model embedded in the SPICE substrate:
   one inverter operating point, one VTC sweep point, one AC point. *)
let spice_group =
  let open Cnt_spice in
  let p_model = Cnt_model.model2 ~polarity:Cnt_model.P_type () in
  let inverter vin =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" 0.6;
        Circuit.vdc ~ac:1.0 "vin" "in" "0" vin;
        Circuit.cnfet "mn" ~drain:"out" ~gate:"in" ~source:"0" model2;
        Circuit.cnfet "mp" ~drain:"out" ~gate:"in" ~source:"vdd" p_model;
      ]
  in
  let mid = inverter 0.3 in
  Test.make_grouped ~name:"spice_substrate"
    [
      Test.make ~name:"inverter_dc_op"
        (stage_unit (fun () -> Dc.operating_point mid));
      Test.make ~name:"inverter_vtc_13pt"
        (stage_unit (fun () ->
             Dc.sweep (inverter 0.0) ~source:"vin" ~start:0.0 ~stop:0.6 ~step:0.05));
      Test.make ~name:"inverter_ac_point"
        (stage_unit (fun () -> Ac.run mid ~freqs:[| 1e9 |]));
    ]

(* Scaling: N-stage CNFET ring-oscillator transient, dense vs sparse
   linear solver.  The per-iteration matrix work is O(n^3) dense versus
   near-linear for the sparse LU on these banded-ish MNA patterns, so
   the gap widens with stage count.  `main scaling-json` runs the same
   workload standalone and emits JSON (committed as
   results/BENCH_sparse.json). *)
let ring_stages = [ 5; 21; 51 ]

let ring_circuits =
  lazy
    (let f = Cnt_spice.Stdcells.family ~length:100e-9 () in
     List.map
       (fun stages ->
         let cells, _out =
           Cnt_spice.Stdcells.ring_oscillator f ~prefix:"r" ~stages
             ~vdd_node:"vdd"
         in
         (stages, Cnt_spice.Stdcells.bench f ~stimuli:[] ~cells))
       ring_stages)

let ring_tran backend circuit ~tstop =
  Cnt_spice.Transient.run ~backend circuit ~tstep:1e-12 ~tstop

let scaling_group =
  let open Cnt_numerics in
  Test.make_grouped ~name:"scaling"
    (List.concat_map
       (fun (stages, circuit) ->
         List.map
           (fun (bname, backend) ->
             Test.make
               ~name:(Printf.sprintf "ring%d_tran_%s" stages bname)
               (stage_unit (fun () ->
                    ring_tran backend circuit ~tstop:2e-11)))
           [
             ("dense", Linear_solver.Dense_backend);
             ("sparse", Linear_solver.Sparse_backend);
           ])
       (Lazy.force ring_circuits))

(* Telemetry overhead: the same workload with the obs registry off
   (the default) and on.  The disabled numbers guard the "< 5 %
   slowdown when off" budget; the enabled run also shows what full
   span/counter collection costs.  `main obs-overhead` runs the same
   comparison standalone with wall-clock timing and JSON output
   (committed as results/BENCH_obs.json). *)
let obs_workloads =
  let open Cnt_spice in
  let p_model = lazy (Cnt_model.model2 ~polarity:Cnt_model.P_type ()) in
  let inverter () =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" 0.6;
        Circuit.vdc "vin" "in" "0" 0.0;
        Circuit.cnfet "mn" ~drain:"out" ~gate:"in" ~source:"0" model2;
        Circuit.cnfet "mp" ~drain:"out" ~gate:"in" ~source:"vdd"
          (Lazy.force p_model);
      ]
  in
  [
    ( "model2_family_7x61",
      fun () ->
        ignore (Cnt_model.output_family model2 ~vgs_list:family_vgs ~vds_points)
    );
    ( "inverter_vtc_13pt",
      fun () ->
        ignore
          (Dc.sweep (inverter ()) ~source:"vin" ~start:0.0 ~stop:0.6 ~step:0.05)
    );
    ( "ring5_tran_20ps",
      fun () ->
        let _, circuit = List.hd (Lazy.force ring_circuits) in
        ignore
          (Cnt_spice.Transient.run ~backend:Cnt_numerics.Linear_solver.Auto
             circuit ~tstep:1e-12 ~tstop:2e-11) );
  ]

let obs_overhead_group =
  let open Cnt_obs in
  Test.make_grouped ~name:"obs_overhead"
    (List.concat_map
       (fun (name, work) ->
         [
           Test.make ~name:(name ^ "_off")
             (stage_unit (fun () ->
                  Obs.disable ();
                  work ()));
           Test.make ~name:(name ^ "_on")
             (stage_unit (fun () ->
                  Obs.reset ();
                  Obs.enable ();
                  work ();
                  Obs.disable ()));
         ])
       obs_workloads)

(* Standalone overhead run: best-of-N wall clock per workload with the
   registry off and on, plus the enabled run's per-phase span totals
   and counters, as JSON on stdout. *)
let obs_overhead_json ~repeats =
  let open Cnt_obs in
  let best f =
    let b = ref infinity in
    for _ = 1 to 1 + repeats do
      (* first run warms caches and is discarded on ties *)
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !b then b := dt
    done;
    !b
  in
  Obs.disable ();
  let entries =
    List.map
      (fun (name, work) ->
        let off_s = best work in
        Obs.reset ();
        Obs.enable ();
        let on_s =
          best (fun () ->
              Obs.reset ();
              work ())
        in
        let phases = Report.phases_json () in
        Obs.disable ();
        (* progress-stream cost in isolation: registry off, a null
           throttled sink installed — what --progress adds to a run *)
        let progress_s =
          Progress.with_sink
            (Progress.sink ~min_interval:0.1 (fun _ -> ()))
            (fun () -> best work)
        in
        Printf.sprintf
          "    {\"workload\": \"%s\", \"disabled_s\": %.6g, \"enabled_s\": \
           %.6g, \"overhead_pct\": %.2f, \"progress_s\": %.6g, \
           \"progress_overhead_pct\": %.2f,\n     \"enabled_phases\": %s}"
          name off_s on_s
          (100.0 *. ((on_s /. off_s) -. 1.0))
          progress_s
          (100.0 *. ((progress_s /. off_s) -. 1.0))
          phases)
      obs_workloads
  in
  print_string "{\n";
  print_string "  \"benchmark\": \"telemetry_overhead\",\n";
  Printf.printf "  \"repeats\": %d,\n" repeats;
  print_string "  \"time_metric\": \"best_wall_clock_s\",\n";
  print_string
    "  \"note\": \"disabled is the default mode; its cost vs pre-telemetry \
     code is one branch per instrument call\",\n";
  print_string "  \"results\": [\n";
  print_string (String.concat ",\n" entries);
  print_string "\n  ]\n}\n"

(* Standalone scaling run with wall-clock timing, as JSON on stdout. *)
let scaling_json () =
  let open Cnt_numerics in
  let tstep = 1e-12 and tstop = 1e-10 in
  let repeats = 5 in
  let measure backend circuit =
    let best = ref infinity and stats = ref None in
    for k = 1 to 1 + repeats do
      (* first run warms caches and is discarded *)
      let t0 = Unix.gettimeofday () in
      let r = Cnt_spice.Transient.run ~backend circuit ~tstep ~tstop in
      let dt = Unix.gettimeofday () -. t0 in
      if k > 1 && dt < !best then begin
        best := dt;
        stats := Some (Cnt_spice.Transient.stats r)
      end
    done;
    (!best, Option.get !stats)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"benchmark\": \"cnfet_ring_oscillator_transient\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"tstep_s\": %g,\n  \"tstop_s\": %g,\n  \"repeats\": %d,\n"
       tstep tstop repeats);
  Buffer.add_string buf "  \"time_metric\": \"best_wall_clock_s\",\n";
  Buffer.add_string buf "  \"results\": [\n";
  let entries =
    List.map
      (fun (stages, circuit) ->
        let dense_s, dstats = measure Linear_solver.Dense_backend circuit in
        let sparse_s, sstats = measure Linear_solver.Sparse_backend circuit in
        Printf.sprintf
          "    {\"stages\": %d, \"unknowns\": %d, \"dense_nnz\": %d, \
           \"sparse_nnz\": %d, \"dense_s\": %.6g, \"sparse_s\": %.6g, \
           \"speedup\": %.3g, \"dense_solve_s\": %.6g, \"sparse_solve_s\": \
           %.6g, \"solve_speedup\": %.3g}"
          stages dstats.Cnt_spice.Mna.unknowns dstats.Cnt_spice.Mna.nonzeros
          sstats.Cnt_spice.Mna.nonzeros dense_s sparse_s (dense_s /. sparse_s)
          dstats.Cnt_spice.Mna.solve_s sstats.Cnt_spice.Mna.solve_s
          (dstats.Cnt_spice.Mna.solve_s /. sstats.Cnt_spice.Mna.solve_s))
      (Lazy.force ring_circuits)
  in
  Buffer.add_string buf (String.concat ",\n" entries);
  Buffer.add_string buf "\n  ]\n}\n";
  print_string (Buffer.contents buf)

(* Parallel scaling: the same deterministic workloads on the domain
   pool at 1 and 4 domains.  Outputs are byte-identical at every jobs
   count (see docs/PARALLEL.md); only wall-clock changes, and only when
   the host actually has spare cores.  `main parallel-json` runs the
   jobs in {1, 2, 4} sweep standalone and emits JSON (committed as
   results/BENCH_parallel.json). *)
let parallel_workloads =
  let open Cnt_spice in
  let open Cnt_experiments in
  let mc_config count = { Variation.default_config with count; seed = 42L } in
  let p_model = lazy (Cnt_model.model2 ~polarity:Cnt_model.P_type ()) in
  let inverter () =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" 0.6;
        Circuit.vdc "vin" "in" "0" 0.0;
        Circuit.cnfet "mn" ~drain:"out" ~gate:"in" ~source:"0" model2;
        Circuit.cnfet "mp" ~drain:"out" ~gate:"in" ~source:"vdd"
          (Lazy.force p_model);
      ]
  in
  [
    ( "variation_mc_96",
      fun jobs -> ignore (Variation.run ~config:(mc_config 96) ~jobs ()) );
    ( "inverter_vtc_241pt",
      fun jobs ->
        ignore
          (Dc.sweep (inverter ()) ~jobs ~source:"vin" ~start:0.0 ~stop:0.6
             ~step:0.0025) );
  ]

let parallel_group =
  Test.make_grouped ~name:"parallel"
    (List.concat_map
       (fun (name, work) ->
         List.map
           (fun jobs ->
             Test.make
               ~name:(Printf.sprintf "%s_j%d" name jobs)
               (stage_unit (fun () -> work jobs)))
           [ 1; 4 ])
       parallel_workloads)

(* Standalone parallel-scaling run: best-of-N wall clock per workload
   at jobs in {1, 2, 4}, as JSON on stdout.  host_cores records what
   the machine can actually run concurrently — on a single-core host
   extra domains are a net wall-clock cost (time-slicing plus OCaml 5's
   stop-the-world minor-GC sync across running domains), so the
   speedups there quantify the oversubscription penalty, not the
   pool. *)
let parallel_json ~repeats =
  let jobs_list = [ 1; 2; 4 ] in
  let best f =
    let b = ref infinity in
    for k = 1 to 1 + repeats do
      (* first run warms caches and is discarded *)
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if k > 1 && dt < !b then b := dt
    done;
    !b
  in
  let entries =
    List.map
      (fun (name, work) ->
        let timed =
          List.map (fun jobs -> (jobs, best (fun () -> work jobs))) jobs_list
        in
        let base_s = List.assoc 1 timed in
        let cells =
          List.map
            (fun (jobs, s) ->
              Printf.sprintf
                "      {\"jobs\": %d, \"wall_s\": %.6g, \"speedup\": %.3g}"
                jobs s (base_s /. s))
            timed
        in
        Printf.sprintf "    {\"workload\": \"%s\", \"runs\": [\n%s\n    ]}"
          name
          (String.concat ",\n" cells))
      parallel_workloads
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"benchmark\": \"parallel_scaling\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf (Printf.sprintf "  \"repeats\": %d,\n" repeats);
  Buffer.add_string buf "  \"time_metric\": \"best_wall_clock_s\",\n";
  Buffer.add_string buf
    "  \"note\": \"outputs are byte-identical at every jobs count; speedup \
     needs host_cores > 1 -- when domains outnumber cores they time-slice \
     and pay stop-the-world minor-GC sync, so speedup < 1 quantifies the \
     oversubscription penalty, not the pool\",\n";
  Buffer.add_string buf "  \"results\": [\n";
  Buffer.add_string buf (String.concat ",\n" entries);
  Buffer.add_string buf "\n  ]\n}\n";
  print_string (Buffer.contents buf)

(* Convergence ladder: on an easy deck the ladder's first rung IS the
   old plain Newton solve and the rescue rungs never run, so the only
   added cost is the strategy-trail bookkeeping — it must stay within
   noise (<2%) of a plain-only solve.  The hard bias network from
   test/decks/hard_bias.cir quantifies what an actual gmin-stepping
   rescue costs.  `main convergence-json` runs the comparison
   standalone and emits JSON (committed as
   results/BENCH_convergence.json). *)
let convergence_workloads =
  let open Cnt_spice in
  let p_model = lazy (Cnt_model.model2 ~polarity:Cnt_model.P_type ()) in
  let inverter vin =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" 0.6;
        Circuit.vdc "vin" "in" "0" vin;
        Circuit.cnfet "mn" ~drain:"out" ~gate:"in" ~source:"0" model2;
        Circuit.cnfet "mp" ~drain:"out" ~gate:"in" ~source:"vdd"
          (Lazy.force p_model);
      ]
  in
  [
    ( "inverter_op",
      fun policy -> ignore (Dc.operating_point ~policy (inverter 0.3)) );
    ( "inverter_vtc_13pt",
      fun policy ->
        ignore
          (Dc.sweep ~policy (inverter 0.0) ~source:"vin" ~start:0.0 ~stop:0.6
             ~step:0.05) );
  ]

(* The committed hard deck's bias network: 1 uA into 120 Mohm puts the
   sense node ~240 clamped Newton steps from the zero guess, so plain
   Newton exhausts its budget and the gmin ramp does the work. *)
let hard_bias_circuit () =
  let open Cnt_spice in
  Circuit.create
    [
      Circuit.isource "i1" "0" "nhv" (Waveform.dc 1e-6);
      Circuit.resistor "ra" "nhv" "ngate" 119.6e6;
      Circuit.resistor "rb" "ngate" "0" 0.4e6;
      Circuit.vdc "vdd" "vdd" "0" 0.9;
      Circuit.resistor "rd" "vdd" "out" 100e3;
      Circuit.cnfet "m1" ~drain:"out" ~gate:"ngate" ~source:"0" model2;
    ]

let convergence_group =
  let open Cnt_spice in
  Test.make_grouped ~name:"convergence"
    (List.concat_map
       (fun (name, work) ->
         [
           Test.make
             ~name:(name ^ "_ladder")
             (stage_unit (fun () -> work Homotopy.default));
           Test.make ~name:(name ^ "_plain")
             (stage_unit (fun () -> work Homotopy.plain_only));
         ])
       convergence_workloads
    @ [
        Test.make ~name:"hard_bias_gmin_rescue"
          (stage_unit (fun () -> Dc.operating_point (hard_bias_circuit ())));
      ])

let convergence_json ~repeats =
  let open Cnt_spice in
  (* each timed sample runs [inner] solves so the sample is a few ms
     long and clock jitter cannot masquerade as ladder overhead *)
  let sample ~inner f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int inner
  in
  let best ~inner f =
    let b = ref infinity in
    ignore (sample ~inner f);
    (* warm-up, discarded *)
    for _ = 1 to repeats do
      let dt = sample ~inner f in
      if dt < !b then b := dt
    done;
    !b
  in
  (* paired measurement with alternating samples, so slow drift of the
     host (thermal throttling, GC heap growth) hits both arms equally
     instead of always penalising whichever is measured second *)
  let best2 ~inner f g =
    let bf = ref infinity and bg = ref infinity in
    ignore (sample ~inner f);
    ignore (sample ~inner g);
    for _ = 1 to repeats do
      let df = sample ~inner f in
      if df < !bf then bf := df;
      let dg = sample ~inner g in
      if dg < !bg then bg := dg
    done;
    (!bf, !bg)
  in
  let entry name plain_s ladder_s =
    Printf.sprintf
      "    {\"workload\": \"%s\", \"plain_s\": %.6g, \"ladder_s\": %.6g, \
       \"overhead_pct\": %.2f}"
      name plain_s ladder_s
      (100.0 *. ((ladder_s /. plain_s) -. 1.0))
  in
  let easy =
    (* seed-equivalent baseline: a raw Mna.newton solve on a compiled
       circuit versus the same solve entering through the ladder *)
    let op_entry =
      let c =
        Mna.compile
          (Circuit.create
             [
               Circuit.vdc "vdd" "vdd" "0" 0.6;
               Circuit.vdc "vin" "in" "0" 0.3;
               Circuit.cnfet "mn" ~drain:"out" ~gate:"in" ~source:"0" model2;
               Circuit.cnfet "mp" ~drain:"out" ~gate:"in" ~source:"vdd"
                 (Cnt_model.model2 ~polarity:Cnt_model.P_type ());
             ])
      in
      let eval_wave _ w = Cnt_spice.Waveform.dc_value w in
      let x0 () = Array.make (Mna.size c) 0.0 in
      let raw_s, ladder_s =
        best2 ~inner:50
          (fun () ->
            ignore (Mna.newton c ~eval_wave ~cap:Mna.Open_circuit (x0 ())))
          (fun () ->
            ignore (Homotopy.solve c ~eval_wave ~cap:Mna.Open_circuit (x0 ())))
      in
      entry "inverter_op_compiled" raw_s ladder_s
    in
    let policy_entries =
      List.map
        (fun (name, work) ->
          let plain_s, ladder_s =
            best2 ~inner:8
              (fun () -> work Homotopy.plain_only)
              (fun () -> work Homotopy.default)
          in
          entry name plain_s ladder_s)
        convergence_workloads
    in
    op_entry :: policy_entries
  in
  let hard =
    let c = Mna.compile (hard_bias_circuit ()) in
    let x0 () = Array.make (Mna.size c) 0.0 in
    let eval_wave _ w = Waveform.dc_value w in
    let rescued_by =
      match Homotopy.solve c ~eval_wave ~cap:Mna.Open_circuit (x0 ()) with
      | Ok (_, trail) ->
          Diag.rung_name
            (List.nth trail (List.length trail - 1)).Diag.rung
      | Error _ -> "none"
    in
    let rescue_s =
      best ~inner:2 (fun () ->
          ignore
            (Homotopy.solve c ~eval_wave ~cap:Mna.Open_circuit (x0 ())))
    in
    let fail_s =
      best ~inner:2 (fun () ->
          ignore
            (Homotopy.solve ~policy:Homotopy.plain_only c ~eval_wave
               ~cap:Mna.Open_circuit (x0 ())))
    in
    [
      Printf.sprintf
        "    {\"workload\": \"hard_bias\", \"rescued_by\": \"%s\", \
         \"rescue_s\": %.6g, \"plain_fail_s\": %.6g}"
        rescued_by rescue_s fail_s;
    ]
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"benchmark\": \"convergence_ladder\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"repeats\": %d,\n" repeats);
  Buffer.add_string buf "  \"time_metric\": \"best_wall_clock_s\",\n";
  Buffer.add_string buf
    "  \"note\": \"the ladder's first rung is the unchanged plain Newton \
     solve, so on decks that converge plainly the only added cost is trail \
     bookkeeping (overhead_pct target < 2); hard_bias needs the gmin ramp, \
     and plain_fail_s is what the doomed 200-iteration plain attempt \
     costs before escalation\",\n";
  Buffer.add_string buf "  \"easy_decks\": [\n";
  Buffer.add_string buf (String.concat ",\n" easy);
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"hard_decks\": [\n";
  Buffer.add_string buf (String.concat ",\n" hard);
  Buffer.add_string buf "\n  ]\n}\n";
  print_string (Buffer.contents buf)

(* Bias-point cache and batched kernels: the cost of the paper's
   family workload (7 x 61 bias points) through the scalar path with
   the cache off, with a warm cache (steady-state hits), and through
   the batched kernel; plus a single cached point hit.  `main
   cache-json` measures the circuit-level payoff (repeated-bias sweeps,
   inverter VTC) standalone and emits JSON (committed as
   results/BENCH_cache.json). *)
let scalar_family model =
  List.iter
    (fun vgs ->
      Array.iter (fun vds -> ignore (Cnt_model.ids model ~vgs ~vds)) vds_points)
    family_vgs

let cache_group =
  let cached_model =
    lazy
      (let m = Cnt_model.model2 () in
       Cnt_model.set_cache m { Eval_cache.size = 4096; quantum = 0.0 };
       scalar_family m;
       (* warm: every grid point resident *)
       m)
  in
  Test.make_grouped ~name:"cache"
    [
      Test.make ~name:"family_7x61_scalar_nocache"
        (stage_unit (fun () -> scalar_family model2));
      Test.make ~name:"family_7x61_scalar_warm_cache"
        (stage_unit (fun () -> scalar_family (Lazy.force cached_model)));
      Test.make ~name:"family_7x61_batch_nocache"
        (stage_unit (fun () ->
             Cnt_model.eval_batch model2
               ~vgs:(Array.of_list family_vgs)
               ~vds:vds_points));
      Test.make ~name:"point_warm_hit"
        (stage_unit (fun () ->
             Cnt_model.ids (Lazy.force cached_model) ~vgs:0.5 ~vds:0.3));
    ]

let cache_json ~repeats =
  let open Cnt_spice in
  let sample ~inner f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int inner
  in
  (* paired best-of alternation, as in convergence-json, so host drift
     hits both arms equally *)
  let best2 ~inner f g =
    let bf = ref infinity and bg = ref infinity in
    ignore (sample ~inner f);
    ignore (sample ~inner g);
    for _ = 1 to repeats do
      let df = sample ~inner f in
      if df < !bf then bf := df;
      let dg = sample ~inner g in
      if dg < !bg then bg := dg
    done;
    (!bf, !bg)
  in
  let cache_cfg = { Eval_cache.size = 4096; quantum = 0.0 } in
  (* one fresh-cache pass for the hit/miss profile of a workload *)
  let profile_stats ~cfg models work =
    List.iter (fun m -> Cnt_model.set_cache m cfg) models;
    work ();
    let s =
      List.fold_left
        (fun acc m ->
          let s = Cnt_model.cache_stats m in
          {
            Eval_cache.hits = acc.Eval_cache.hits + s.Eval_cache.hits;
            misses = acc.Eval_cache.misses + s.Eval_cache.misses;
            evictions = acc.Eval_cache.evictions + s.Eval_cache.evictions;
          })
        { Eval_cache.hits = 0; misses = 0; evictions = 0 }
        models
    in
    List.iter (fun m -> Cnt_model.set_cache m Eval_cache.disabled) models;
    s
  in
  let entry ?(cfg = cache_cfg) ~name ~inner ~models ~off_arm ~on_arm
      ~stats_work () =
    let off_s, on_s =
      best2 ~inner
        (fun () ->
          List.iter (fun m -> Cnt_model.set_cache m Eval_cache.disabled) models;
          off_arm ())
        (fun () ->
          List.iter (fun m -> Cnt_model.set_cache m cfg) models;
          on_arm ())
    in
    let s = profile_stats ~cfg models stats_work in
    let total = s.Eval_cache.hits + s.Eval_cache.misses in
    Printf.sprintf
      "    {\"workload\": \"%s\", \"cache\": \"%s\", \"cache_off_s\": %.6g, \
       \"cache_on_s\": %.6g, \"speedup\": %.3g, \"hits\": %d, \"misses\": \
       %d, \"evictions\": %d, \"hit_rate\": %.3f}"
      name
      (Eval_cache.config_to_string cfg)
      off_s on_s (off_s /. on_s) s.Eval_cache.hits s.Eval_cache.misses
      s.Eval_cache.evictions
      (if total = 0 then 0.0 else float_of_int s.Eval_cache.hits /. float_of_int total)
  in
  (* 1. repeated-bias sweep: the paper's 7x61 family evaluated 5 times
     over (a characterisation loop revisiting one grid) *)
  let family_model = Cnt_model.model2 () in
  let repeated_family () =
    for _ = 1 to 5 do
      scalar_family family_model
    done
  in
  let repeated =
    entry ~name:"family_7x61_x5_scalar" ~inner:2 ~models:[ family_model ]
      ~off_arm:repeated_family ~on_arm:repeated_family
      ~stats_work:repeated_family ()
  in
  (* 2. batch kernel vs scalar loop, single cold pass, no cache *)
  let batch_entry =
    let vgs = Array.of_list family_vgs in
    let scalar () = scalar_family family_model in
    let batch () = ignore (Cnt_model.eval_batch family_model ~vgs ~vds:vds_points) in
    Cnt_model.set_cache family_model Eval_cache.disabled;
    let scalar_s, batch_s = best2 ~inner:4 scalar batch in
    Printf.sprintf
      "    {\"workload\": \"family_7x61_batch_vs_scalar\", \"scalar_s\": \
       %.6g, \"batch_s\": %.6g, \"speedup\": %.3g}"
      scalar_s batch_s (scalar_s /. batch_s)
  in
  (* 3. circuit level: 61-point inverter VTC; Newton warm starts and
     gm/gds stencils revisit bias points within and across steps *)
  let n_model = Cnt_model.model2 () in
  let p_model = Cnt_model.model2 ~polarity:Cnt_model.P_type () in
  let inverter () =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" 0.6;
        Circuit.vdc "vin" "in" "0" 0.0;
        Circuit.cnfet "mn" ~drain:"out" ~gate:"in" ~source:"0" n_model;
        Circuit.cnfet "mp" ~drain:"out" ~gate:"in" ~source:"vdd" p_model;
      ]
  in
  let vtc () =
    ignore
      (Dc.sweep (inverter ()) ~source:"vin" ~start:0.0 ~stop:0.6 ~step:0.01)
  in
  let vtc_entry =
    entry ~name:"inverter_vtc_61pt" ~inner:2 ~models:[ n_model; p_model ]
      ~off_arm:vtc ~on_arm:vtc ~stats_work:vtc ()
  in
  (* quantisation's target: near-repeated biases (re-measured grids,
     jittered sweeps) that exact keys always miss.  Five passes over
     the family grid with a sub-quantum jitter per pass: exact keys
     miss every pass, 1 uV snapping hits from the second pass on.
     (Do NOT quantise inside Newton solves: the induced I-V steps stall
     the update-based convergence test — see docs/CACHING.md.) *)
  let jittered_family () =
    for pass = 0 to 4 do
      let jitter = 1e-8 *. float_of_int pass in
      List.iter
        (fun vgs ->
          Array.iter
            (fun vds ->
              ignore (Cnt_model.ids family_model ~vgs ~vds:(vds +. jitter)))
            vds_points)
        family_vgs
    done
  in
  let quantised_entry =
    entry
      ~cfg:{ Eval_cache.size = 4096; quantum = 1e-6 }
      ~name:"family_7x61_x5_jittered_quantised" ~inner:2
      ~models:[ family_model ] ~off_arm:jittered_family
      ~on_arm:jittered_family ~stats_work:jittered_family ()
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"benchmark\": \"eval_cache\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"repeats\": %d,\n" repeats);
  Buffer.add_string buf "  \"time_metric\": \"best_wall_clock_s\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"cache_config\": \"%s\",\n"
       (Eval_cache.config_to_string cache_cfg));
  Buffer.add_string buf
    "  \"note\": \"quantum 0 keys make cached results bitwise-identical to \
     uncached ones (pinned by test_property/test_golden); the repeated-bias \
     workload is the cache's target and must show speedup >= 2.  \
     inverter_vtc_61pt quantifies the miss overhead instead: Newton \
     iterates almost never repeat a bias bitwise, so exact-key caching \
     inside a raw sweep is a small net cost -- which is why caching is \
     opt-in.  Quantised keys must never be used inside Newton solves (the \
     induced I-V steps stall convergence); the jittered workload shows \
     their actual target, near-repeated bias grids\",\n";
  Buffer.add_string buf "  \"results\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       [ repeated; batch_entry; vtc_entry; quantised_entry ]);
  Buffer.add_string buf "\n  ]\n}\n";
  print_string (Buffer.contents buf)

(* Batched SoA assembly vs the scalar per-device path: the 51-stage
   ring transient at the scaling-bench operating point (sparse backend,
   tstep 1 ps, tstop 100 ps).  Both modes produce byte-identical
   waveforms (pinned by test/test_assembly.ml); only assembly cost
   differs.  `main assembly-json` runs the comparison standalone with
   wall-clock timing, an OBS-instrumented gather/batch_eval/scatter
   span breakdown and a bitwise waveform digest check, and emits JSON
   (committed as results/BENCH_assembly.json). *)
let assembly_group =
  let open Cnt_numerics in
  let circuit = lazy (List.assoc 51 (Lazy.force ring_circuits)) in
  Test.make_grouped ~name:"assembly"
    (List.map
       (fun mode ->
         Test.make
           ~name:
             (Printf.sprintf "ring51_tran_%s" (Cnt_spice.Mna.assembly_name mode))
           (stage_unit (fun () ->
                Cnt_spice.Transient.run ~backend:Linear_solver.Sparse_backend
                  ~assembly:mode (Lazy.force circuit) ~tstep:1e-12 ~tstop:2e-11)))
       [ Cnt_spice.Mna.Scalar; Cnt_spice.Mna.Batched ])

let assembly_json ~repeats =
  let open Cnt_numerics in
  let open Cnt_obs in
  let tstep = 1e-12 and tstop = 1e-10 in
  (* pre-refactor sparse end-to-end time at these exact parameters,
     from results/BENCH_sparse.json (stages = 51) *)
  let baseline_sparse_s = 0.388961 in
  let circuit = List.assoc 51 (Lazy.force ring_circuits) in
  let run assembly =
    Cnt_spice.Transient.run ~backend:Linear_solver.Sparse_backend ~assembly
      circuit ~tstep ~tstop
  in
  let measure assembly =
    let best = ref infinity and stats = ref None and result = ref None in
    for k = 1 to 1 + repeats do
      (* first run warms caches and is discarded *)
      let t0 = Unix.gettimeofday () in
      let r = run assembly in
      let dt = Unix.gettimeofday () -. t0 in
      if k > 1 && dt < !best then begin
        best := dt;
        stats := Some (Cnt_spice.Transient.stats r)
      end;
      if Option.is_none !result then result := Some r
    done;
    (!best, Option.get !stats, Option.get !result)
  in
  let digest (r : Cnt_spice.Transient.result) =
    Array.fold_left
      (fun acc sol ->
        Array.fold_left
          (fun acc v -> (acc * 31) + Int64.to_int (Int64.bits_of_float v))
          acc sol)
      0 r.Cnt_spice.Transient.solutions
  in
  (* one instrumented run per mode for the per-phase span totals; the
     telemetry run's wall clock is not used (spans cost time) *)
  let spans assembly =
    Obs.reset ();
    Obs.enable ();
    ignore (run assembly);
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let t = try Hashtbl.find tbl e.Obs.ev_name with Not_found -> 0.0 in
        Hashtbl.replace tbl e.Obs.ev_name (t +. e.Obs.ev_dur))
      (Obs.events ());
    Obs.disable ();
    Obs.reset ();
    fun name -> try Hashtbl.find tbl name with Not_found -> 0.0
  in
  let scalar_s, sstats, sres = measure Cnt_spice.Mna.Scalar in
  let batched_s, bstats, bres = measure Cnt_spice.Mna.Batched in
  let identical = digest sres = digest bres in
  let bspan = spans Cnt_spice.Mna.Batched in
  let mode_json name wall (st : Cnt_spice.Mna.stats) extra =
    Printf.sprintf
      "  \"%s\": {\"wall_s\": %.6g, \"assemble_s\": %.6g, \"solve_s\": %.6g, \
       \"newton_iterations\": %d, \"device_evals\": %d%s}"
      name wall st.Cnt_spice.Mna.assemble_s st.Cnt_spice.Mna.solve_s
      st.Cnt_spice.Mna.newton_iterations st.Cnt_spice.Mna.device_evals extra
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"benchmark\": \"cnfet_assembly_modes\",\n";
  Buffer.add_string buf "  \"circuit\": \"ring51_tran\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"tstep_s\": %g,\n  \"tstop_s\": %g,\n  \"repeats\": %d,\n"
       tstep tstop repeats);
  Buffer.add_string buf "  \"time_metric\": \"best_wall_clock_s\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"baseline_sparse_s\": %.6g,\n" baseline_sparse_s);
  Buffer.add_string buf
    "  \"note\": \"baseline_sparse_s is the pre-refactor end-to-end time from \
     results/BENCH_sparse.json at identical parameters; \
     waveforms_bitwise_identical compares every solution vector of the two \
     modes bit for bit (the invariant pinned by test/test_assembly.ml); the \
     batched span breakdown comes from a separate telemetry-enabled run\",\n";
  Buffer.add_string buf (mode_json "scalar" scalar_s sstats "");
  Buffer.add_string buf ",\n";
  Buffer.add_string buf
    (mode_json "batched" batched_s bstats
       (Printf.sprintf
          ", \"spans\": {\"gather_s\": %.6g, \"batch_eval_s\": %.6g, \
           \"scatter_s\": %.6g}"
          (bspan "assemble.gather")
          (bspan "assemble.batch_eval")
          (bspan "assemble.scatter")));
  Buffer.add_string buf ",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_batched_vs_scalar\": %.3g,\n"
       (scalar_s /. batched_s));
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_vs_baseline\": %.3g,\n"
       (baseline_sparse_s /. batched_s));
  Buffer.add_string buf
    (Printf.sprintf "  \"waveforms_bitwise_identical\": %b\n" identical);
  Buffer.add_string buf "}\n";
  print_string (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Daemon round-trip throughput (ISSUE 8).

   Requests/sec and latency percentiles for cnt-rpc/1 round trips over
   a mixed golden-deck workload against an in-process Server, in two
   configurations: COLD runs every request through a full parse +
   symbolic compile (deck cache sized to one entry with two alternating
   decks, compile cache disabled), WARM shares the canonical parsed
   deck and the compiled template across requests the way a long-lived
   cntd does.  Each request opens its own connection, mirroring one
   `cspice --connect` invocation.  `main server-json` emits the JSON
   artefact (committed as results/BENCH_server.json). *)

let server_json ~requests =
  let find_deck name =
    let candidates =
      [
        Filename.concat "test/decks" name;
        Filename.concat
          (Filename.dirname Sys.executable_name)
          (Filename.concat "../test/decks" name);
      ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> failwith ("server bench: cannot find deck " ^ name)
  in
  let read_deck path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let decks =
    [|
      read_deck (find_deck "golden_divider.cir");
      read_deck (find_deck "golden_inverter.cir");
    |]
  in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cnt-bench-%d.sock" (Unix.getpid ()))
  in
  let config = Cnt_spice.Engine.default_config in
  let one_request deck_text =
    let t0 = Unix.gettimeofday () in
    (match Cnt_server.Client.connect sock with
    | Error msg -> failwith ("server bench: connect: " ^ msg)
    | Ok conn -> (
        Fun.protect ~finally:(fun () -> Cnt_server.Client.close conn)
        @@ fun () ->
        match
          Cnt_server.Client.run conn ~deck_text ~config ~progress:false ()
        with
        | Ok (tables, _) -> if tables = [] then failwith "no tables"
        | Error e -> failwith ("server bench: " ^ e.Cnt_server.Client.message)));
    Unix.gettimeofday () -. t0
  in
  (* one run of the mixed workload against a freshly started server *)
  let phase ~deck_cache_entries ~compile_cache_entries =
    if Sys.file_exists sock then Sys.remove sock;
    let server =
      Cnt_server.Server.start
        {
          (Cnt_server.Server.default_config
             ~listen:(Cnt_server.Server.Unix_path sock))
          with
          Cnt_server.Server.deck_cache_entries;
          compile_cache_entries;
        }
    in
    Fun.protect ~finally:(fun () -> Cnt_server.Server.stop server)
    @@ fun () ->
    let lat =
      Array.init requests (fun i -> one_request decks.(i mod 2))
    in
    Array.sort compare lat;
    let pct p = lat.(min (requests - 1) (int_of_float (p *. float requests))) in
    let total = Array.fold_left ( +. ) 0.0 lat in
    (total, pct 0.50, pct 0.99)
  in
  (* cold: 1-entry deck cache + alternating decks evicts every request;
     compile cache off.  warm: both caches on, daemon-sized. *)
  let cold_total, cold_p50, cold_p99 =
    phase ~deck_cache_entries:1 ~compile_cache_entries:0
  in
  let warm_total, warm_p50, warm_p99 =
    phase ~deck_cache_entries:64 ~compile_cache_entries:64
  in
  let fr = float_of_int requests in
  Printf.printf "{\n  \"benchmark\": \"server\",\n  \"requests\": %d,\n"
    requests;
  Printf.printf
    "  \"cold\": {\"total_s\": %.6g, \"requests_per_s\": %.1f, \"p50_s\": \
     %.6g, \"p99_s\": %.6g},\n"
    cold_total (fr /. cold_total) cold_p50 cold_p99;
  Printf.printf
    "  \"warm\": {\"total_s\": %.6g, \"requests_per_s\": %.1f, \"p50_s\": \
     %.6g, \"p99_s\": %.6g},\n"
    warm_total (fr /. warm_total) warm_p50 warm_p99;
  Printf.printf "  \"speedup_warm_vs_cold_p50\": %.3g,\n"
    (cold_p50 /. warm_p50);
  Printf.printf "  \"speedup_warm_vs_cold_total\": %.3g\n}\n"
    (cold_total /. warm_total)

(* ------------------------------------------------------------------ *)
(* Device-model backends (ISSUE 9).

   Per-backend cost of the registry-dispatched model tier: scalar
   bias-point evaluation, a DC inverter VTC sweep and an inverter step
   transient, each run once per registered backend by forcing the
   engine's model override.  The piecewise backend prices the paper's
   table-driven charge models through the Device_model indirection; the
   vs backend prices the closed-form virtual-source evaluation.  `main
   models-json` emits the JSON artefact (committed as
   results/BENCH_models.json). *)

let models_backends = [ "piecewise"; "vs" ]

let models_model_of backend =
  match
    Device_model.of_card ~backend ~polarity:Device_model.N_type
      ~number:float_of_string []
  with
  | Ok m -> m
  | Error msg -> failwith ("models bench: " ^ backend ^ ": " ^ msg)

let models_bias_grid =
  List.concat_map
    (fun vgs ->
      List.map (fun vds -> (vgs, vds)) [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ])
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ]

let models_group =
  Test.make_grouped ~name:"models"
    (List.map
       (fun backend ->
         let m = lazy (models_model_of backend) in
         Test.make
           ~name:(Printf.sprintf "ids_grid_%s" backend)
           (stage_unit (fun () ->
                let m = Lazy.force m in
                List.fold_left
                  (fun acc (vgs, vds) -> acc +. Device_model.ids m ~vgs ~vds)
                  0.0 models_bias_grid)))
       models_backends)

let models_dc_deck =
  "models bench VTC\nVDD vdd 0 0.6\nVIN in 0 0\nMP out in vdd PCNFET\nMN out \
   in 0 CNFET\n.dc VIN 0 0.6 0.005\n.print v(out) id(MN)\n.end"

let models_tran_deck =
  "models bench step\nVDD vdd 0 0.6\nVIN in 0 PULSE(0 0.6 1n 0.2n 0.2n 2n \
   5n)\nMP out in vdd PCNFET l=100\nMN out in 0 CNFET l=100\nCL out 0 1f\n\
   .tran 0.05n 5n\n.print v(out)\n.end"

let models_json ~repeats =
  let run_deck backend text =
    let deck = Cnt_spice.Parser.parse text in
    let config = Cnt_spice.Engine.config ~model:backend () in
    match Cnt_spice.Engine.run_deck_result ~config deck with
    | Ok tables -> tables
    | Error e -> failwith ("models bench: " ^ Cnt_spice.Diag.error_message e)
  in
  let best f =
    let best = ref infinity and out = ref None in
    for k = 1 to 1 + repeats do
      (* first run warms the card memo and compile caches, discarded *)
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if k > 1 && dt < !best then best := dt;
      if Option.is_none !out then out := Some r
    done;
    (!best, Option.get !out)
  in
  let eval_grid m =
    List.fold_left
      (fun acc (vgs, vds) -> acc +. Device_model.ids m ~vgs ~vds)
      0.0 models_bias_grid
  in
  let backend_json backend =
    let m = models_model_of backend in
    let evals_per_round = List.length models_bias_grid in
    let rounds = 200 in
    let grid_s, _ =
      best (fun () ->
          let acc = ref 0.0 in
          for _ = 1 to rounds do
            acc := !acc +. eval_grid m
          done;
          !acc)
    in
    let dc_s, dc_tables = best (fun () -> run_deck backend models_dc_deck) in
    let tran_s, tran_tables =
      best (fun () -> run_deck backend models_tran_deck)
    in
    let stats tables =
      List.fold_left
        (fun (iters, evals) (t : Cnt_spice.Engine.table) ->
          ( iters + t.Cnt_spice.Engine.stats.Cnt_spice.Mna.newton_iterations,
            evals + t.Cnt_spice.Engine.stats.Cnt_spice.Mna.device_evals ))
        (0, 0) tables
    in
    let dc_iters, dc_evals = stats dc_tables in
    let tran_iters, tran_evals = stats tran_tables in
    Printf.sprintf
      "  \"%s\": {\"ids_eval_per_s\": %.6g, \"dc_vtc_s\": %.6g, \
       \"dc_newton_iterations\": %d, \"dc_device_evals\": %d, \"tran_s\": \
       %.6g, \"tran_newton_iterations\": %d, \"tran_device_evals\": %d}"
      backend
      (float_of_int (rounds * evals_per_round) /. grid_s)
      dc_s dc_iters dc_evals tran_s tran_iters tran_evals
  in
  let rows = List.map backend_json models_backends in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"benchmark\": \"device_model_backends\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"repeats\": %d,\n  \"time_metric\": \
                     \"best_wall_clock_s\",\n" repeats);
  Buffer.add_string buf
    "  \"note\": \"per-backend cost through the Device_model registry: a \
     49-point scalar ids grid, the inverter VTC DC sweep (121 points) and \
     the inverter step transient (100 steps), each forced onto the backend \
     via the engine model override\",\n";
  Buffer.add_string buf (String.concat ",\n" rows);
  Buffer.add_string buf "\n}\n";
  print_string (Buffer.contents buf)

let all_tests =
  Test.make_grouped ~name:"cntsim"
    [
      table1; table2; table3; table4; table5; fig23; fig45; fig69; fig1011;
      ablation; spice_group; scaling_group; obs_overhead_group; parallel_group;
      convergence_group; cache_group; assembly_group; models_group;
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let raw_results = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  (Analyze.merge ols instances results, raw_results)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "scaling-json" then begin
    scaling_json ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "obs-overhead" then begin
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    obs_overhead_json ~repeats:(if smoke then 2 else 10);
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "parallel-json" then begin
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    parallel_json ~repeats:(if smoke then 1 else 5);
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "convergence-json" then begin
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    convergence_json ~repeats:(if smoke then 2 else 10);
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "cache-json" then begin
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    cache_json ~repeats:(if smoke then 2 else 10);
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "assembly-json" then begin
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    assembly_json ~repeats:(if smoke then 1 else 5);
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "server-json" then begin
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    server_json ~requests:(if smoke then 16 else 200);
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "models-json" then begin
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    models_json ~repeats:(if smoke then 1 else 5);
    exit 0
  end;
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 120; h = 1 }
  in
  let results, _ = benchmark () in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.eol img |> Notty_unix.output_image;
  print_newline ();
  print_endline
    "Groups map to the paper's experiments (see DESIGN.md section 3).";
  print_endline
    "Wall-clock totals for the paper's exact Table I loop counts: run `dune exec \
     bin/repro.exe -- table1`."
