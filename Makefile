# Convenience targets; dune is the real build system.

.PHONY: all build test check bench obs-smoke obs-bench repro clean

all: build

build:
	dune build @all

test:
	dune runtest

# The gate CI runs: full build plus every test suite.
check:
	dune build @all
	dune runtest

# Quick telemetry-overhead smoke run (2 repeats; prints JSON to stdout).
obs-smoke:
	@dune exec bench/main.exe -- obs-overhead --smoke

# Full telemetry-overhead benchmark; refreshes the committed artefact.
obs-bench:
	dune exec bench/main.exe -- obs-overhead > results/BENCH_obs.json
	@tail -n +2 results/BENCH_obs.json | head -n 4

repro:
	dune exec bin/repro.exe -- all

clean:
	dune clean
