# Convenience targets; dune is the real build system.

.PHONY: all build test check bench bench-diff obs-smoke obs-bench par-check par-bench conv-check conv-smoke conv-bench cache-check cache-smoke cache-bench asm-check asm-smoke asm-bench server-check server-smoke server-bench models-check models-smoke models-bench corpus-check corpus-bless repro clean

all: build

build:
	dune build @all

test:
	dune runtest

# The gate CI runs: full build plus every test suite.
check:
	dune build @all
	dune runtest

# Compare two BENCH_*.json artefacts: every timing leaf (keys ending
# in _s) present in both is checked for relative regressions.
#   make bench-diff OLD=results/BENCH_obs.json NEW=/tmp/BENCH_obs.json
#   make bench-diff OLD=... NEW=... THRESHOLD=15
THRESHOLD ?= 10
bench-diff:
	dune exec bench/compare.exe -- $(OLD) $(NEW) --threshold $(THRESHOLD)

# Quick telemetry-overhead smoke run (2 repeats; prints JSON to stdout).
obs-smoke:
	@dune exec bench/main.exe -- obs-overhead --smoke

# Full telemetry-overhead benchmark; refreshes the committed artefact.
obs-bench:
	dune exec bench/main.exe -- obs-overhead > results/BENCH_obs.json
	@tail -n +2 results/BENCH_obs.json | head -n 4

# Parallel determinism gate: the full test suite must pass with the
# domain pool forced sequential and forced wide (see docs/PARALLEL.md).
par-check:
	CNT_JOBS=1 dune runtest --force
	CNT_JOBS=4 dune runtest --force

# Parallel-scaling benchmark; refreshes the committed artefact.
par-bench:
	dune exec bench/main.exe -- parallel-json > results/BENCH_parallel.json
	@tail -n +2 results/BENCH_parallel.json | head -n 5

# Convergence gate: the fault-injection suite at both pool widths (see
# docs/CONVERGENCE.md).
conv-check:
	CNT_JOBS=1 dune exec test/test_convergence.exe
	CNT_JOBS=4 dune exec test/test_convergence.exe

# Quick ladder-overhead smoke run (2 repeats; prints JSON to stdout).
conv-smoke:
	@dune exec bench/main.exe -- convergence-json --smoke

# Full ladder-overhead benchmark; refreshes the committed artefact.
conv-bench:
	dune exec bench/main.exe -- convergence-json > results/BENCH_convergence.json
	@tail -n +2 results/BENCH_convergence.json | head -n 5

# Cache invisibility gate: the full suite with every CNFET cache forced
# on (exact keys), sequential and wide (see docs/CACHING.md).
cache-check:
	CNT_CACHE=4096 CNT_JOBS=1 dune runtest --force
	CNT_CACHE=4096 CNT_JOBS=4 dune runtest --force

# Assembly equivalence gate: the full suite with CNFET stamp assembly
# forced scalar and forced batched (see docs/ASSEMBLY.md).
asm-check:
	CNT_ASSEMBLY=scalar dune runtest --force
	CNT_ASSEMBLY=batched dune runtest --force

# Quick assembly-mode smoke run (1 repeat; prints JSON to stdout).
asm-smoke:
	@dune exec bench/main.exe -- assembly-json --smoke

# Full assembly-mode benchmark; refreshes the committed artefact.
asm-bench:
	dune exec bench/main.exe -- assembly-json > results/BENCH_assembly.json
	@tail -n +2 results/BENCH_assembly.json | head -n 8

# Quick cache/batch smoke run (2 repeats; prints JSON to stdout).
cache-smoke:
	@dune exec bench/main.exe -- cache-json --smoke

# Full cache/batch benchmark; refreshes the committed artefact.
cache-bench:
	dune exec bench/main.exe -- cache-json > results/BENCH_cache.json
	@tail -n +2 results/BENCH_cache.json | head -n 6

# Daemon/protocol gate: wire round-trips, byte parity offline vs
# --connect, edge cases, graceful drain (see docs/SERVER.md).
server-check:
	dune exec test/test_server.exe

# Quick daemon-throughput smoke run (16 requests; prints JSON to stdout).
server-smoke:
	@dune exec bench/main.exe -- server-json --smoke

# Full daemon-throughput benchmark (cold vs warm caches); refreshes the
# committed artefact.
server-bench:
	dune exec bench/main.exe -- server-json > results/BENCH_server.json
	@tail -n +2 results/BENCH_server.json | head -n 6

# Device-model gate: the full suite with every CNFET forced onto each
# registered backend (see docs/MODELS.md).  Suites that pin bytes for
# deck-declared models neutralise the variable; the bitwise-invariance
# suites (jobs, assembly, cache) genuinely run under the forced backend.
models-check:
	CNT_MODEL=piecewise dune runtest --force
	CNT_MODEL=vs dune runtest --force

# Quick per-backend cost smoke run (1 repeat; prints JSON to stdout).
models-smoke:
	@dune exec bench/main.exe -- models-json --smoke

# Full per-backend benchmark; refreshes the committed artefact.
models-bench:
	dune exec bench/main.exe -- models-json > results/BENCH_models.json
	@tail -n +2 results/BENCH_models.json | head -n 5

# Netlist front-end gate: every test/corpus deck against its pinned
# stdout or located-diagnostic golden, plus the parser property suite
# (see docs/NETLIST.md).
corpus-check:
	dune exec test/test_corpus.exe

# Regenerate the corpus goldens after an intentional front-end change.
corpus-bless:
	CNT_BLESS=1 dune exec test/test_corpus.exe

repro:
	dune exec bin/repro.exe -- all

clean:
	dune clean
